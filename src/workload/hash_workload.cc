#include "workload/hash_workload.h"

#include "net/flow.h"

#include <deque>
#include <memory>
#include <vector>

#include "baselines/aifm.h"
#include "baselines/onesided.h"
#include "baselines/twosided.h"
#include "common/check.h"
#include "common/pool.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/client.h"
#include "p4/engine.h"
#include "spot/setup.h"
#include "workload/generator.h"
#include "workload/testbed.h"

namespace cowbird::workload {

const char* ParadigmName(Paradigm p) {
  switch (p) {
    case Paradigm::kLocalMemory: return "local-memory";
    case Paradigm::kTwoSidedSync: return "two-sided-sync";
    case Paradigm::kOneSidedSync: return "one-sided-sync";
    case Paradigm::kOneSidedAsync: return "one-sided-async";
    case Paradigm::kCowbirdNoBatch: return "cowbird-nobatch";
    case Paradigm::kCowbird: return "cowbird";
    case Paradigm::kCowbirdP4: return "cowbird-p4";
    case Paradigm::kAifm: return "aifm";
  }
  return "unknown";
}

namespace {

constexpr std::uint64_t kPoolBase = 0x1000'0000;
constexpr std::uint64_t kHeapBase = 0x8000'0000;
constexpr std::uint64_t kHeapStride = MiB(4);
constexpr std::uint16_t kRegion = 1;

struct Harness {
  explicit Harness(const HashWorkloadConfig& config,
                   BitRate compute_uplink = BitRate::Gbps(100))
      : cfg(config),
        bed(16, compute_uplink, config.split_domains, config.split_workers) {
    pool_mr = bed.memory_dev.RegisterMemory(
        kPoolBase, cfg.records * cfg.record_size + KiB(4));
    // Registered memory is pinned at ibv_reg_mr time on real hardware, so
    // fault the record pool and the per-thread delivery windows in up front;
    // page materialization must never land on the measured datapath.
    bed.memory_mem.PreFault(kPoolBase, cfg.records * cfg.record_size + KiB(4));
    for (int t = 0; t < cfg.threads; ++t) {
      bed.compute_mem.PreFault(kHeapBase + t * kHeapStride, kHeapStride);
    }
    if (auto* hub = cfg.telemetry) {
      hub->tracer.SetClock([this] { return bed.sim.Now(); });
      // Split runs shard the telemetry: cells mutated on the engine domain's
      // thread live in a private hub merged into the caller's snapshot after
      // the run. Serial runs alias ehub to the caller's hub, byte-identical
      // to the pre-split wiring.
      telemetry::Hub* ehub = hub;
      if (bed.split()) {
        engine_hub = std::make_unique<telemetry::Hub>(
            [this] { return bed.esim.Now(); });
        ehub = engine_hub.get();
      }
      bed.compute_dev.BindTelemetry(hub->metrics, {{"node", "compute"}});
      bed.memory_dev.BindTelemetry(ehub->metrics, {{"node", "memory"}});
      bed.spot_dev.BindTelemetry(ehub->metrics, {{"node", "spot"}});
      // Link counters mutate on the delivery side, so each link binds to
      // the hub of its destination domain.
      const struct {
        const char* name;
        net::Link* link;
        telemetry::Hub* dst_hub;
      } fabric[] = {
          {"sw_to_compute", &bed.sw.EgressLink(bed.compute_nic.switch_port()),
           hub},
          {"sw_to_memory", &bed.sw.EgressLink(bed.memory_nic.switch_port()),
           ehub},
          {"sw_to_spot", &bed.sw.EgressLink(bed.spot_nic.switch_port()),
           ehub},
          {"compute_uplink", &bed.compute_nic.uplink(), ehub},
          {"memory_uplink", &bed.memory_nic.uplink(), ehub},
          {"spot_uplink", &bed.spot_nic.uplink(), ehub},
      };
      for (const auto& f : fabric) {
        f.link->BindTelemetry(f.dst_hub->metrics, {{"link", f.name}});
        bound_links.push_back(f.link);
      }
      // Datapath object pools: in-use / high-water / exhaustion gauges make
      // a mis-sized pool visible instead of silently degrading to the heap.
      BindPoolTelemetry(hub->metrics, telemetry::Labels{{"pool", "sim_events"}},
                        bed.sim.EventPoolStats());
      BindPoolTelemetry(hub->metrics, telemetry::Labels{{"pool", "sim_timers"}},
                        bed.sim.TimerPoolStats());
    }
    if (bed.split()) {
      // Debug builds pin each registry to its domain's worker thread.
      bed.group->SetDomainStartHook(0, [this] {
        if (cfg.telemetry) cfg.telemetry->metrics.BindToCurrentThread();
      });
      bed.group->SetDomainStartHook(1, [this] {
        if (engine_hub) engine_hub->metrics.BindToCurrentThread();
      });
    }
    for (int t = 0; t < cfg.threads; ++t) {
      threads.push_back(
          std::make_unique<sim::SimThread>(bed.compute_machine,
                                           "app-" + std::to_string(t)));
      ops.push_back(0);
    }

    switch (cfg.paradigm) {
      case Paradigm::kLocalMemory:
        break;
      case Paradigm::kAifm:
        aifm = std::make_unique<baselines::AifmModel>(
            bed.sim, baselines::AifmModel::Config{});
        break;
      case Paradigm::kTwoSidedSync: {
        server = std::make_unique<baselines::TwoSidedServer>(
            bed.memory_dev, bed.memory_machine, cfg.costs);
        for (int t = 0; t < cfg.threads; ++t) {
          auto pair = rdma::ConnectQueuePairs(bed.compute_dev,
                                              bed.memory_dev);
          server->Serve(pair.b, pair.b_recv_cq, t);
          rpc_clients.push_back(std::make_unique<baselines::TwoSidedClient>(
              bed.compute_dev, pair.a, pair.a_recv_cq, cfg.costs, t));
        }
        break;
      }
      case Paradigm::kOneSidedSync:
      case Paradigm::kOneSidedAsync: {
        for (int t = 0; t < cfg.threads; ++t) {
          auto pair = rdma::ConnectQueuePairs(bed.compute_dev,
                                              bed.memory_dev);
          baselines::OneSidedEndpoint ep{pair.a, pair.a_send_cq,
                                         pool_mr->rkey};
          endpoints.push_back(ep);
          pipelines.push_back(std::make_unique<baselines::AsyncPipeline>(
              ep, cfg.costs, cfg.window));
        }
        break;
      }
      case Paradigm::kCowbirdNoBatch:
      case Paradigm::kCowbird:
      case Paradigm::kCowbirdP4: {
        core::CowbirdClient::Config cc;
        cc.layout.base = 0x10000;
        cc.layout.threads = cfg.threads;
        cc.layout.meta_slots = 4096;
        cc.layout.data_capacity = MiB(1);
        cc.layout.resp_capacity = MiB(1);
        cc.costs = cfg.costs;
        cc.telemetry = cfg.telemetry;
        client = std::make_unique<core::CowbirdClient>(bed.compute_dev, cc);
        client->RegisterRegion(core::RegionInfo{
            kRegion, Testbed::kMemoryId, kPoolBase, pool_mr->rkey,
            cfg.records * cfg.record_size + KiB(4)});
        if (cfg.paradigm == Paradigm::kCowbirdP4) {
          p4::CowbirdP4Engine::Config ec;
          ec.telemetry = EngineTelemetry();
          p4_engine = std::make_unique<p4::CowbirdP4Engine>(bed.sw, ec);
          auto conn = p4::ConnectP4Engine(*p4_engine, ec.switch_node_id,
                                          bed.compute_dev, bed.memory_dev,
                                          0x800);
          p4_engine->AddInstance(client->descriptor(), conn);
          p4_engine->Start();
          break;
        }
        spot::SpotAgent::Config ac = cfg.agent;
        ac.costs = cfg.costs;
        ac.telemetry = EngineTelemetry();
        if (cfg.paradigm == Paradigm::kCowbirdNoBatch) ac.batch_size = 1;
        agent = std::make_unique<spot::SpotAgent>(bed.spot_dev,
                                                  bed.spot_machine, ac);
        rdma::Device* memories[] = {&bed.memory_dev};
        auto conn =
            spot::ConnectSpotEngine(bed.spot_dev, bed.compute_dev, memories);
        agent->AddInstance(client->descriptor(), conn.to_compute,
                           conn.compute_cq, conn.to_memory, conn.memory_cqs);
        agent->Start();
        break;
      }
    }

    if (cfg.loss_rate > 0) {
      net::Link* lossy[] = {
          &bed.sw.EgressLink(bed.compute_nic.switch_port()),
          &bed.sw.EgressLink(bed.memory_nic.switch_port()),
          &bed.sw.EgressLink(bed.spot_nic.switch_port()),
      };
      if (!bed.split()) {
        // One shared stream drawn in delivery order — the historical
        // behavior the golden-pinned serial runs depend on.
        loss_rng = std::make_unique<Rng>(cfg.seed * 104729 + 1);
        auto filter = [this](const net::Packet& p) {
          return rdma::LooksLikeRdma(p) && loss_rng->Bernoulli(cfg.loss_rate);
        };
        for (net::Link* link : lossy) link->set_drop_filter(filter);
      } else {
        // Drop filters run on each link's destination domain; a shared
        // stream would race (and make drop decisions depend on thread
        // interleaving), so split mode derives one stream per link.
        for (std::size_t i = 0; i < std::size(lossy); ++i) {
          loss_rngs.push_back(std::make_unique<Rng>(
              cfg.seed * 104729 + 1 + 1000003 * (i + 1)));
          lossy[i]->set_drop_filter(
              [this, rng = loss_rngs.back().get()](const net::Packet& p) {
                return rdma::LooksLikeRdma(p) &&
                       rng->Bernoulli(cfg.loss_rate);
              });
        }
      }
    }
  }

  telemetry::Hub* EngineTelemetry() {
    return engine_hub ? engine_hub.get() : cfg.telemetry;
  }

  ~Harness() {
    if (auto* hub = cfg.telemetry) {
      bed.compute_dev.UnbindTelemetry();
      bed.memory_dev.UnbindTelemetry();
      bed.spot_dev.UnbindTelemetry();
      for (net::Link* link : bound_links) link->UnbindTelemetry();
      UnbindPoolTelemetry(hub->metrics,
                          telemetry::Labels{{"pool", "sim_events"}});
      UnbindPoolTelemetry(hub->metrics,
                          telemetry::Labels{{"pool", "sim_timers"}});
      // The testbed simulation dies with the harness but the caller keeps
      // the hub: freeze the tracer clock at the final virtual time.
      hub->tracer.SetClock([now = bed.sim.Now()] { return now; });
    }
  }

  std::uint64_t LocalKeyCount() const {
    return static_cast<std::uint64_t>(cfg.local_fraction *
                                      static_cast<double>(cfg.records));
  }
  std::uint64_t HeapFor(int t) const { return kHeapBase + t * kHeapStride; }

  std::uint64_t NextKey(Rng& rng) const {
    if (cfg.zipfian) return zipf->NextScrambled(rng);
    return rng.Below(cfg.records);
  }

  HashWorkloadConfig cfg;
  Testbed bed;
  const rdma::MemoryRegion* pool_mr = nullptr;
  std::unique_ptr<core::CowbirdClient> client;
  std::unique_ptr<spot::SpotAgent> agent;
  std::unique_ptr<p4::CowbirdP4Engine> p4_engine;
  std::unique_ptr<baselines::TwoSidedServer> server;
  std::unique_ptr<baselines::AifmModel> aifm;
  std::unique_ptr<ZipfianGenerator> zipf;
  std::unique_ptr<Rng> loss_rng;
  std::vector<std::unique_ptr<Rng>> loss_rngs;  // split mode: one per link
  std::unique_ptr<telemetry::Hub> engine_hub;   // split mode + telemetry
  std::vector<std::unique_ptr<sim::SimThread>> threads;
  std::vector<std::unique_ptr<baselines::TwoSidedClient>> rpc_clients;
  std::vector<std::unique_ptr<baselines::AsyncPipeline>> pipelines;
  std::vector<baselines::OneSidedEndpoint> endpoints;
  std::vector<std::uint64_t> ops;
  std::vector<net::Link*> bound_links;
};

// Per-operation application work common to all paradigms.
sim::Task<void> AppProbeWork(Harness& h, sim::SimThread& thread) {
  co_await thread.Work(h.cfg.app_compute, sim::CpuCategory::kCompute);
}
sim::Task<void> AppConsumeWork(Harness& h, sim::SimThread& thread) {
  co_await thread.Work(h.cfg.costs.CopyCost(h.cfg.record_size),
                       sim::CpuCategory::kCompute);
}
sim::Task<void> LocalAccessWork(Harness& h, sim::SimThread& thread) {
  co_await thread.Work(
      h.cfg.costs.local_access + h.cfg.costs.CopyCost(h.cfg.record_size),
      sim::CpuCategory::kCompute);
}

sim::Task<void> DriveSync(Harness& h, int t) {
  sim::SimThread& thread = *h.threads[t];
  Rng rng(h.cfg.seed * 7919 + t);
  const std::uint64_t local_keys = h.LocalKeyCount();
  const std::uint64_t dest = h.HeapFor(t);
  for (;;) {
    const std::uint64_t key = h.NextKey(rng);
    co_await AppProbeWork(h, thread);
    if (key < local_keys) {
      co_await LocalAccessWork(h, thread);
    } else {
      const std::uint64_t remote = kPoolBase + key * h.cfg.record_size;
      switch (h.cfg.paradigm) {
        case Paradigm::kOneSidedSync:
          co_await baselines::SyncRead(
              thread, h.cfg.costs, h.endpoints[t], remote, dest,
              static_cast<std::uint32_t>(h.cfg.record_size));
          break;
        case Paradigm::kTwoSidedSync:
          co_await h.rpc_clients[t]->Read(
              thread, remote, dest,
              static_cast<std::uint32_t>(h.cfg.record_size));
          break;
        case Paradigm::kAifm:
          co_await h.aifm->RemoteGet(
              thread, static_cast<std::uint32_t>(h.cfg.record_size));
          break;
        default:
          COWBIRD_CHECK(false);
      }
      co_await AppConsumeWork(h, thread);
    }
    ++h.ops[t];
  }
}

sim::Task<void> DriveLocal(Harness& h, int t) {
  sim::SimThread& thread = *h.threads[t];
  Rng rng(h.cfg.seed * 7919 + t);
  for (;;) {
    (void)h.NextKey(rng);
    co_await AppProbeWork(h, thread);
    co_await LocalAccessWork(h, thread);
    ++h.ops[t];
  }
}

sim::Task<void> DriveOneSidedAsync(Harness& h, int t) {
  sim::SimThread& thread = *h.threads[t];
  baselines::AsyncPipeline& pipeline = *h.pipelines[t];
  Rng rng(h.cfg.seed * 7919 + t);
  const std::uint64_t local_keys = h.LocalKeyCount();
  for (;;) {
    if (pipeline.CanIssue()) {
      const std::uint64_t key = h.NextKey(rng);
      co_await AppProbeWork(h, thread);
      if (key < local_keys) {
        co_await LocalAccessWork(h, thread);
        ++h.ops[t];
        continue;
      }
      const std::uint64_t slot = rng.Below(
          static_cast<std::uint64_t>(h.cfg.window));
      co_await pipeline.IssueRead(
          thread, kPoolBase + key * h.cfg.record_size,
          h.HeapFor(t) + slot * h.cfg.record_size,
          static_cast<std::uint32_t>(h.cfg.record_size));
      continue;
    }
    const auto cqe = co_await pipeline.Poll(thread);
    if (cqe.has_value()) {
      co_await AppConsumeWork(h, thread);
      ++h.ops[t];
    }
  }
}

sim::Task<void> DriveCowbird(Harness& h, int t) {
  sim::SimThread& thread = *h.threads[t];
  auto& ctx = h.client->thread(t);
  Rng rng(h.cfg.seed * 7919 + t);
  const std::uint64_t local_keys = h.LocalKeyCount();
  const core::PollId poll = ctx.PollCreate();
  // Responses array owned by the application, Table-2 style: reused across
  // poll_wait calls so the steady-state harvest loop never allocates.
  std::vector<core::ReqId> done;
  done.reserve(static_cast<std::size_t>(h.cfg.window));
  int outstanding = 0;
  for (;;) {
    if (outstanding < h.cfg.window) {
      const std::uint64_t key = h.NextKey(rng);
      co_await AppProbeWork(h, thread);
      if (key < local_keys) {
        co_await LocalAccessWork(h, thread);
        ++h.ops[t];
        continue;
      }
      const std::uint64_t slot =
          rng.Below(static_cast<std::uint64_t>(h.cfg.window));
      std::optional<core::ReqId> id;
      if (h.cfg.write_fraction > 0 &&
          rng.NextDouble() < h.cfg.write_fraction) {
        id = co_await ctx.AsyncWrite(
            thread, kRegion, h.HeapFor(t) + slot * h.cfg.record_size,
            key * h.cfg.record_size,
            static_cast<std::uint32_t>(h.cfg.record_size));
      } else {
        id = co_await ctx.AsyncRead(
            thread, kRegion, key * h.cfg.record_size,
            h.HeapFor(t) + slot * h.cfg.record_size,
            static_cast<std::uint32_t>(h.cfg.record_size));
      }
      if (id.has_value()) {
        ctx.PollAdd(poll, *id);
        ++outstanding;
        continue;
      }
      // Rings full: fall through to harvest completions.
    }
    co_await ctx.PollWait(thread, poll, done, h.cfg.window, 0);
    if (done.empty()) {
      co_await thread.Idle(300);
      continue;
    }
    for (std::size_t i = 0; i < done.size(); ++i) {
      co_await AppConsumeWork(h, thread);
      ++h.ops[t];
    }
    outstanding -= static_cast<int>(done.size());
  }
}

struct CpuSnapshot {
  Nanos compute = 0;
  Nanos comm = 0;
  Nanos agent_busy = 0;
  std::uint64_t ops = 0;
};

CpuSnapshot Snapshot(const Harness& h) {
  CpuSnapshot s;
  for (int t = 0; t < h.cfg.threads; ++t) {
    s.compute += h.threads[t]->TimeIn(sim::CpuCategory::kCompute);
    s.comm += h.threads[t]->TimeIn(sim::CpuCategory::kCommunication);
    s.ops += h.ops[t];
  }
  if (h.agent) s.agent_busy = h.agent->agent_thread().TotalBusy();
  return s;
}

}  // namespace

WorkloadResult RunHashWorkload(const HashWorkloadConfig& config) {
  Harness h(config);
  if (config.zipfian) {
    h.zipf = std::make_unique<ZipfianGenerator>(config.records,
                                                config.zipf_theta);
  }
  for (int t = 0; t < config.threads; ++t) {
    switch (config.paradigm) {
      case Paradigm::kLocalMemory:
        h.bed.sim.Spawn(DriveLocal(h, t));
        break;
      case Paradigm::kOneSidedSync:
      case Paradigm::kTwoSidedSync:
      case Paradigm::kAifm:
        h.bed.sim.Spawn(DriveSync(h, t));
        break;
      case Paradigm::kOneSidedAsync:
        h.bed.sim.Spawn(DriveOneSidedAsync(h, t));
        break;
      case Paradigm::kCowbird:
      case Paradigm::kCowbirdNoBatch:
      case Paradigm::kCowbirdP4:
        h.bed.sim.Spawn(DriveCowbird(h, t));
        break;
    }
  }

  h.bed.RunFor(config.warmup);
  const CpuSnapshot start = Snapshot(h);
  if (config.on_measure_start) config.on_measure_start();
  const Nanos t0 = h.bed.sim.Now();
  const std::uint64_t events0 = h.bed.EventsProcessed();
  h.bed.RunFor(config.measure);
  if (config.on_measure_end) config.on_measure_end();
  const CpuSnapshot end = Snapshot(h);
  const Nanos elapsed = h.bed.sim.Now() - t0;

  WorkloadResult result;
  result.ops = end.ops - start.ops;
  result.sim_events = h.bed.EventsProcessed() - events0;
  result.elapsed = elapsed;
  result.mops = Mops(result.ops, elapsed);
  const Nanos comm = end.comm - start.comm;
  const Nanos compute = end.compute - start.compute;
  result.comm_ratio =
      comm + compute > 0
          ? static_cast<double>(comm) / static_cast<double>(comm + compute)
          : 0.0;
  result.offload_core_util =
      h.agent ? static_cast<double>(end.agent_busy - start.agent_busy) /
                    static_cast<double>(elapsed)
              : 0.0;
  if (config.telemetry != nullptr) {
    result.telemetry = config.telemetry->metrics.TakeSnapshot();
    if (h.engine_hub) {
      // Fold the engine domain's shard back in: metrics merge by key, op
      // phase stamps interleave per key (each side stamped a disjoint set).
      result.telemetry.MergeFrom(h.engine_hub->metrics.TakeSnapshot());
      config.telemetry->tracer.MergeFrom(h.engine_hub->tracer);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Latency probe (Figure 13)
// ---------------------------------------------------------------------------

LatencyResult RunLatencyProbe(const LatencyProbeConfig& config) {
  HashWorkloadConfig base;
  base.paradigm = config.paradigm;
  base.threads = 1;
  base.record_size = config.record_size;
  base.records = 1'000'000;
  base.local_fraction = 0.0;  // every op goes remote
  base.window = config.inflight;
  base.agent = config.agent;
  base.costs = config.costs;
  base.telemetry = config.telemetry;
  Harness h(base);

  PercentileSampler sampler;
  sampler.Reserve(config.samples);
  bool finished = false;

  h.bed.sim.Spawn([](Harness& hh, const LatencyProbeConfig& cfg,
                     PercentileSampler& out, bool& done) -> sim::Task<void> {
    sim::SimThread& thread = *hh.threads[0];
    Rng rng(4242);
    const auto len = static_cast<std::uint32_t>(cfg.record_size);
    if (cfg.paradigm == Paradigm::kOneSidedSync) {
      for (int i = 0; i < cfg.samples; ++i) {
        const Nanos begin = hh.bed.sim.Now();
        const std::uint64_t key = rng.Below(hh.cfg.records);
        co_await baselines::SyncRead(thread, cfg.costs, hh.endpoints[0],
                                     kPoolBase + key * cfg.record_size,
                                     hh.HeapFor(0), len);
        out.Add(static_cast<double>(hh.bed.sim.Now() - begin));
      }
    } else if (cfg.paradigm == Paradigm::kOneSidedAsync) {
      // Keep `inflight` reads outstanding; latency includes queueing behind
      // the batch, as in the paper.
      baselines::AsyncPipeline& pipeline = *hh.pipelines[0];
      std::deque<Nanos> issue_times;
      int issued = 0, completed = 0;
      while (completed < cfg.samples) {
        if (pipeline.CanIssue() && issued < cfg.samples + cfg.inflight) {
          const std::uint64_t key = rng.Below(hh.cfg.records);
          issue_times.push_back(hh.bed.sim.Now());
          co_await pipeline.IssueRead(thread,
                                      kPoolBase + key * cfg.record_size,
                                      hh.HeapFor(0), len);
          ++issued;
          continue;
        }
        auto cqe = co_await pipeline.Poll(thread);
        if (cqe.has_value()) {
          out.Add(static_cast<double>(hh.bed.sim.Now() -
                                      issue_times.front()));
          issue_times.pop_front();
          ++completed;
        }
      }
    } else {
      // Cowbird variants.
      auto& ctx = hh.client->thread(0);
      const core::PollId poll = ctx.PollCreate();
      std::deque<std::pair<std::uint64_t, Nanos>> issue_times;  // seq → t
      std::vector<core::ReqId> done_ids;
      done_ids.reserve(static_cast<std::size_t>(cfg.inflight));
      int issued = 0, completed = 0, outstanding = 0;
      while (completed < cfg.samples) {
        if (outstanding < cfg.inflight &&
            issued < cfg.samples + cfg.inflight) {
          const std::uint64_t key = rng.Below(hh.cfg.records);
          auto id = co_await ctx.AsyncRead(thread, kRegion,
                                           key * cfg.record_size,
                                           hh.HeapFor(0), len);
          if (id.has_value()) {
            ctx.PollAdd(poll, *id);
            issue_times.emplace_back(id->seq(), hh.bed.sim.Now());
            ++issued;
            ++outstanding;
            continue;
          }
        }
        co_await ctx.PollWait(thread, poll, done_ids, cfg.inflight, 0);
        if (done_ids.empty()) {
          co_await thread.Idle(200);
          continue;
        }
        for (const auto& id : done_ids) {
          COWBIRD_CHECK(!issue_times.empty() &&
                        issue_times.front().first == id.seq());
          out.Add(static_cast<double>(hh.bed.sim.Now() -
                                      issue_times.front().second));
          issue_times.pop_front();
          ++completed;
          --outstanding;
        }
      }
    }
    done = true;
    hh.bed.sim.Halt();
  }(h, config, sampler, finished));

  h.bed.sim.Run();
  COWBIRD_CHECK(finished);
  LatencyResult result;
  result.samples = sampler.count();
  result.median_us = sampler.Median() / 1000.0;
  result.p99_us = sampler.P99() / 1000.0;
  if (config.telemetry != nullptr) {
    result.telemetry = config.telemetry->metrics.TakeSnapshot();
  }
  return result;
}

// ---------------------------------------------------------------------------
// Bandwidth contention (Figure 14)
// ---------------------------------------------------------------------------

ContentionResult RunContentionExperiment(const HashWorkloadConfig& config,
                                         int tcp_flows,
                                         BitRate compute_uplink) {
  // The greedy flows drive the compute uplink from the host thread; the
  // experiment has not been audited for the domain cut.
  COWBIRD_CHECK(!config.split_domains);
  Harness h(config, compute_uplink);
  if (config.zipfian) {
    h.zipf = std::make_unique<ZipfianGenerator>(config.records,
                                                config.zipf_theta);
  }
  // Worst case per the paper: RDMA above user traffic on the shared uplink.
  h.bed.compute_nic.uplink().set_priority_scheduling(true);

  for (int t = 0; t < config.threads; ++t) {
    switch (config.paradigm) {
      case Paradigm::kLocalMemory:
        h.bed.sim.Spawn(DriveLocal(h, t));
        break;
      case Paradigm::kCowbird:
      case Paradigm::kCowbirdNoBatch:
      case Paradigm::kCowbirdP4:
        h.bed.sim.Spawn(DriveCowbird(h, t));
        break;
      default:
        COWBIRD_CHECK(false);  // Figure 14 compares Cowbird vs no Cowbird
    }
  }

  std::vector<std::unique_ptr<net::GreedyFlow>> flows;
  for (int i = 0; i < tcp_flows; ++i) {
    flows.push_back(std::make_unique<net::GreedyFlow>(
        h.bed.compute_nic, h.bed.bystander_nic,
        static_cast<std::uint16_t>(i), net::GreedyFlow::Config{}));
  }

  h.bed.sim.RunFor(config.warmup);
  const CpuSnapshot start = Snapshot(h);
  const Nanos t0 = h.bed.sim.Now();
  for (auto& flow : flows) flow->Start();
  h.bed.sim.RunFor(config.measure);
  const CpuSnapshot end = Snapshot(h);
  const Nanos elapsed = h.bed.sim.Now() - t0;

  ContentionResult result;
  for (auto& flow : flows) result.tcp_gbps += flow->GoodputGbps();
  result.app_mops = Mops(end.ops - start.ops, elapsed);
  return result;
}

}  // namespace cowbird::workload
