// The hash-index microbenchmark of Figures 1, 8, 12 and 13.
//
// A hash table of `records` fixed-size records is split between compute-
// local memory (local_fraction, 5% in the paper) and the remote pool. Each
// application thread repeatedly: picks a key, spends `app_compute` ns of
// CPU probing the index, then materializes the record — from local memory
// or through the configured remote-access paradigm. Throughput (MOPS) and
// the communication ratio (Figure 10's metric) are measured over a window
// of virtual time after warmup.
#pragma once

#include <cstdint>
#include <functional>

#include "common/units.h"
#include "rdma/params.h"
#include "spot/agent.h"
#include "telemetry/hub.h"

namespace cowbird::workload {

enum class Paradigm {
  kLocalMemory,    // upper bound: everything in compute-node DRAM
  kTwoSidedSync,   // SEND/RECV RPC per access
  kOneSidedSync,   // RDMA read + spin per access
  kOneSidedAsync,  // pipelined RDMA reads, window of `window`
  kCowbirdNoBatch, // Cowbird-Spot, engine batching disabled
  kCowbird,        // Cowbird-Spot with batching
  kCowbirdP4,      // Cowbird with the programmable-switch engine
  kAifm,           // AIFM cost model (Figure 12)
};

const char* ParadigmName(Paradigm p);

struct HashWorkloadConfig {
  Paradigm paradigm = Paradigm::kCowbird;
  int threads = 1;
  Bytes record_size = 256;
  std::uint64_t records = 1'000'000;
  double local_fraction = 0.05;
  Nanos app_compute = 60;   // hash + bucket probe CPU per operation
  int window = 100;         // async pipeline depth / poll batch
  Nanos warmup = Micros(300);
  Nanos measure = Millis(2);
  std::uint64_t seed = 1;
  bool zipfian = false;
  double zipf_theta = 0.99;
  // Fraction of operations that are remote *writes* (ablation: write
  // interference with the two engines' read-fencing policies).
  double write_fraction = 0.0;
  // Random RDMA packet loss injected on the host-facing links (ablation:
  // Go-Back-N recovery cost).
  double loss_rate = 0.0;
  spot::SpotAgent::Config agent;  // Cowbird engine knobs (batch_size etc.)
  rdma::CostModel costs;
  // Run the testbed as a two-domain sim::DomainGroup (compute node vs
  // switch + memory/spot/bystander) with `split_workers` threads
  // (0 → hardware concurrency). Split runs are bit-deterministic for any
  // worker count. Relative to serial, loss-free runs land within a
  // sub-percent drift (~0.1% ops): cross-domain deliveries are sequenced at
  // drain time, which flips same-timestamp tie-breaks at the cut. With
  // loss_rate > 0 drops additionally come from per-link RNG streams (the
  // serial mode's single shared stream would be an inter-domain race), so
  // faulted runs are self-consistent but not comparable to serial.
  bool split_domains = false;
  int split_workers = 0;
  // Optional telemetry hub: the tracer clock is re-seated onto the run's
  // private simulation, the client and engines are instrumented, and the
  // testbed's devices and fabric links are bound as labeled gauges. The
  // run's final metric state comes back in WorkloadResult::telemetry
  // (the per-run gauges are unbound at teardown).
  telemetry::Hub* telemetry = nullptr;
  // Fired on the host thread at the boundaries of the measure window —
  // after warmup has drained and before the post-measure bookkeeping — so
  // a caller can sample process-level counters (wall clock, allocator
  // statistics) over the steady state only. Both are optional and have no
  // effect on the simulation itself.
  std::function<void()> on_measure_start;
  std::function<void()> on_measure_end;
};

struct WorkloadResult {
  double mops = 0;
  double comm_ratio = 0;       // comm CPU / total busy CPU across threads
  std::uint64_t ops = 0;
  std::uint64_t sim_events = 0;  // events dispatched over the measure window
  Nanos elapsed = 0;
  double offload_core_util = 0;  // spot-agent busy fraction (Cowbird only)
  // Filled when HashWorkloadConfig::telemetry was set.
  telemetry::Snapshot telemetry;
};

WorkloadResult RunHashWorkload(const HashWorkloadConfig& config);

// Closed-loop latency probe (Figure 13): a single thread keeps `inflight`
// operations outstanding and records per-operation completion latency.
struct LatencyResult {
  double median_us = 0;
  double p99_us = 0;
  std::uint64_t samples = 0;
  // Filled when LatencyProbeConfig::telemetry was set. Recorded spans stay
  // in the hub's tracer (clock frozen at the run's final virtual time), so
  // the caller can also export a Chrome trace after the probe returns.
  telemetry::Snapshot telemetry;
};

struct LatencyProbeConfig {
  Paradigm paradigm = Paradigm::kOneSidedSync;
  Bytes record_size = 256;
  int inflight = 1;  // >1 for the batched/async variants
  int samples = 2000;
  spot::SpotAgent::Config agent;
  rdma::CostModel costs;
  telemetry::Hub* telemetry = nullptr;  // see HashWorkloadConfig::telemetry
};

LatencyResult RunLatencyProbe(const LatencyProbeConfig& config);

// Bandwidth-overhead experiment (Figure 14): the hash workload runs with
// the given paradigm while `tcp_flows` greedy bulk flows contend from the
// compute node toward a bystander server. RDMA traffic is prioritized
// *above* the user flows on the shared (priority-scheduled) compute uplink,
// bounding the worst case as in the paper. Returns the flows' aggregate
// goodput.
struct ContentionResult {
  double tcp_gbps = 0;
  double app_mops = 0;
};
ContentionResult RunContentionExperiment(const HashWorkloadConfig& config,
                                         int tcp_flows,
                                         BitRate compute_uplink);

}  // namespace cowbird::workload
