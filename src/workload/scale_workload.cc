#include "workload/scale_workload.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "net/topology.h"
#include "core/client.h"
#include "core/cluster_pool.h"
#include "core/migration.h"
#include "p4/engine.h"
#include "rdma/congestion.h"
#include "spot/setup.h"
#include "workload/testbed.h"

namespace cowbird::workload {
namespace {

constexpr std::uint64_t kPoolBase = 0x1000'0000;
constexpr std::uint64_t kHeapBase = 0x8000'0000;
constexpr std::uint64_t kHeapStride = MiB(4);
constexpr std::uint16_t kRegion = 1;
// Physical slabs backing the migrating client's ClusterPool region live
// away from the striped per-server pools so neither registration overlaps.
constexpr std::uint64_t kSlabBase = 0x4000'0000;
// Cadence of the migration coordinator. Ticks are pre-scheduled (global
// events when split) because conservative PDES forbids rescheduling a
// global event from inside one.
constexpr Nanos kMigrateTick = Micros(25);

// Incast collapses the striping: every client hits memory server 0.
int ServerFor(const ScaleWorkloadConfig& cfg, int k) {
  return cfg.incast ? 0 : k % cfg.memory_servers;
}

struct ScaleHarness {
  explicit ScaleHarness(const ScaleWorkloadConfig& config,
                        std::vector<int> pack_groups = {})
      : cfg(config), bed(MakeFanInConfig(config, std::move(pack_groups))) {
    latency_traces.resize(
        static_cast<std::size_t>(cfg.clients * cfg.threads_per_client));
    const Bytes pool_bytes = cfg.records * cfg.record_size + KiB(4);
    for (int m = 0; m < cfg.memory_servers; ++m) {
      pool_mrs.push_back(
          bed.memory_devs[static_cast<std::size_t>(m)]->RegisterMemory(
              kPoolBase, pool_bytes));
      bed.memory_mems[static_cast<std::size_t>(m)]->PreFault(kPoolBase,
                                                             pool_bytes);
    }
    if (cfg.migrate) {
      // Client 0's region comes from an elastic ClusterPool instead of the
      // striped per-server pool: one slab per server (source + rebalance
      // destination), region carved entirely on server 0.
      COWBIRD_CHECK(cfg.memory_servers >= 2);
      slab_bytes = (pool_bytes + core::ClusterPool::kRangeAlign - 1) /
                   core::ClusterPool::kRangeAlign *
                   core::ClusterPool::kRangeAlign;
      for (int m = 0; m < 2; ++m) {
        const auto mm = static_cast<std::size_t>(m);
        pool.AddServer(*bed.memory_devs[mm], kSlabBase, slab_bytes);
        bed.memory_mems[mm]->PreFault(kSlabBase, slab_bytes);
      }
      if (cfg.telemetry != nullptr) {
        pool.BindTelemetry(cfg.telemetry->metrics, telemetry::Labels{});
      }
    }

    BindTelemetry();

    // Per-client Cowbird instances, every one offloaded through the same
    // engine (fan-in). Client k's region lives on memory server k % M.
    for (int k = 0; k < cfg.clients; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      for (int t = 0; t < cfg.threads_per_client; ++t) {
        bed.client_mems[kk]->PreFault(kHeapBase + t * kHeapStride,
                                      kHeapStride);
        threads.push_back(std::make_unique<sim::SimThread>(
            *bed.client_machines[kk],
            "app-" + std::to_string(k) + "-" + std::to_string(t)));
      }
      core::CowbirdClient::Config cc;
      cc.layout.base = 0x10000;
      cc.layout.threads = cfg.threads_per_client;
      cc.layout.meta_slots = 4096;
      cc.layout.data_capacity = MiB(1);
      cc.layout.resp_capacity = MiB(1);
      cc.costs = cfg.costs;
      cc.telemetry = HubFor(bed.client_node(k));
      clients.push_back(std::make_unique<core::CowbirdClient>(
          *bed.client_devs[kk], cc));
      const int server = ServerFor(cfg, k);
      if (cfg.migrate && k == 0) {
        const auto region = pool.AllocateRegion(kRegion, kPoolBase,
                                                slab_bytes, bed.memory_id(0));
        COWBIRD_CHECK(region.has_value());
        clients.back()->RegisterRegion(*region);
        clients.back()->SetRegionRanges(kRegion, pool.RangesFor(kRegion));
      } else {
        clients.back()->RegisterRegion(core::RegionInfo{
            kRegion, bed.memory_id(server), kPoolBase,
            pool_mrs[static_cast<std::size_t>(server)]->rkey, pool_bytes});
      }
      ops.emplace_back(static_cast<std::size_t>(cfg.threads_per_client), 0);
    }

    if (cfg.paradigm == Paradigm::kCowbirdP4) {
      p4::CowbirdP4Engine::Config ec;
      ec.telemetry = HubFor(bed.switch_node());
      // When the NICs run DCQCN, the switch-generated packets join the ECN
      // loop too (and the engine reflects CNPs to the memory hosts).
      ec.ecn_capable = cfg.dcqcn.enabled;
      if (cfg.p4_probe_interval > 0) {
        ec.probe_interval = cfg.p4_probe_interval;
      }
      p4_switch_id = ec.switch_node_id;
      p4_engine = std::make_unique<p4::CowbirdP4Engine>(bed.sw, ec);
      for (int k = 0; k < cfg.clients; ++k) {
        const int server = ServerFor(cfg, k);
        const std::uint32_t qpn_base =
            0x800 + 0x20 * static_cast<std::uint32_t>(k);
        p4::P4Connection conn;
        if (cfg.migrate && k == 0) {
          // The migrating instance needs an endpoint pair on both servers:
          // post-cutover translations resolve to the destination.
          rdma::Device* memories[] = {bed.memory_devs[0].get(),
                                      bed.memory_devs[1].get()};
          conn = p4::ConnectP4Engine(*p4_engine, ec.switch_node_id,
                                     *bed.client_devs[0], memories, qpn_base);
        } else {
          conn = p4::ConnectP4Engine(
              *p4_engine, ec.switch_node_id,
              *bed.client_devs[static_cast<std::size_t>(k)],
              *bed.memory_devs[static_cast<std::size_t>(server)], qpn_base);
        }
        p4_engine->AddInstance(clients[static_cast<std::size_t>(k)]
                                   ->descriptor(),
                               conn);
      }
      reattach_qpn_base = 0x800 + 0x20 * static_cast<std::uint32_t>(
                                             cfg.clients);
      p4_engine->Start();
    } else {
      COWBIRD_CHECK(cfg.paradigm == Paradigm::kCowbird);
      spot::SpotAgent::Config ac = cfg.agent;
      ac.costs = cfg.costs;
      ac.telemetry = HubFor(bed.spot_node());
      agent = std::make_unique<spot::SpotAgent>(*bed.spot_dev,
                                                *bed.spot_machine, ac);
      for (int k = 0; k < cfg.clients; ++k) {
        const int server = ServerFor(cfg, k);
        std::vector<rdma::Device*> memories;
        if (cfg.migrate && k == 0) {
          memories = {bed.memory_devs[0].get(), bed.memory_devs[1].get()};
        } else {
          memories = {bed.memory_devs[static_cast<std::size_t>(server)]
                          .get()};
        }
        auto conn = spot::ConnectSpotEngine(
            *bed.spot_dev, *bed.client_devs[static_cast<std::size_t>(k)],
            memories);
        agent->AddInstance(clients[static_cast<std::size_t>(k)]
                               ->descriptor(),
                           conn.to_compute, conn.compute_cq, conn.to_memory,
                           conn.memory_cqs);
      }
      agent->Start();
    }

    if (cfg.migrate) {
      // The copy stream rides a dedicated QP src→dst, sharing the fabric —
      // and therefore contending — with the foreground read traffic.
      migrate_qp = rdma::ConnectQueuePairs(*bed.memory_devs[0],
                                           *bed.memory_devs[1]);
    }
  }

  std::uint64_t TotalOps() const {
    std::uint64_t total = 0;
    for (const auto& per_thread : ops) {
      for (const std::uint64_t count : per_thread) total += count;
    }
    return total;
  }

  // One pre-scheduled coordinator tick (a global event when split): drives
  // the copy-then-cutover state machine for client 0's region. The cutover
  // itself — translation flip, client range republish, engine re-attach —
  // happens inside a single tick, atomic in virtual time.
  void MigrationTick(Nanos now) {
    switch (migration_stage) {
      case MigrationStage::kArmed: {
        migrate_started_at = now;
        ops_at_migrate_start = TotalOps();
        migrate_plan = pool.PlanMove(kRegion, kPoolBase, bed.memory_id(1));
        COWBIRD_CHECK(migrate_plan.has_value());
        core::RegionMigrator::Config mc;
        mc.chunk = cfg.migrate_chunk;
        mc.window = cfg.migrate_window;
        mc.telemetry = cfg.telemetry;
        migrator = std::make_unique<core::RegionMigrator>(
            *bed.memory_devs[0], *migrate_qp.a, *migrate_qp.a_send_cq,
            *migrate_plan, mc);
        migrator->Start();
        migration_stage = MigrationStage::kCopying;
        break;
      }
      case MigrationStage::kCopying: {
        if (!migrator->ReadyForCutover()) break;
        // Detach: export the resume snapshot and stop serving client 0.
        // Reads it had in flight are re-executed after the re-attach.
        const std::uint32_t id = clients[0]->descriptor().instance_id;
        if (p4_engine != nullptr) {
          migrate_resume = p4_engine->ExportProgress(id);
          p4_engine->RemoveInstance(id);
        } else {
          migrate_resume = agent->ExportProgress(id);
          agent->RemoveInstance(id);
        }
        COWBIRD_CHECK(migrate_resume.has_value());
        migrator->BeginFinalDrain();
        migration_stage = MigrationStage::kDraining;
        break;
      }
      case MigrationStage::kDraining: {
        migrator->Nudge();
        if (!migrator->Synced()) break;
        pool.CommitMove(*migrate_plan);
        clients[0]->SetRegionRanges(kRegion, pool.RangesFor(kRegion));
        migrator->Finish();
        rdma::Device* memories[] = {bed.memory_devs[0].get(),
                                    bed.memory_devs[1].get()};
        if (p4_engine != nullptr) {
          const auto conn = p4::ConnectP4Engine(
              *p4_engine, p4_switch_id, *bed.client_devs[0], memories,
              reattach_qpn_base);
          p4_engine->AddInstance(clients[0]->descriptor(), conn,
                                 &*migrate_resume);
        } else {
          const auto conn = spot::ConnectSpotEngine(
              *bed.spot_dev, *bed.client_devs[0], memories);
          agent->AddInstance(clients[0]->descriptor(), conn.to_compute,
                             conn.compute_cq, conn.to_memory,
                             conn.memory_cqs, &*migrate_resume);
        }
        migrate_cutover_at = now;
        ops_at_cutover = TotalOps();
        ++migrations;
        migration_stage = MigrationStage::kDone;
        break;
      }
      case MigrationStage::kDone:
        break;
    }
  }

  ~ScaleHarness() {
    if (cfg.telemetry != nullptr) {
      for (int k = 0; k < cfg.clients; ++k) {
        bed.client_devs[static_cast<std::size_t>(k)]->UnbindTelemetry();
      }
      for (int m = 0; m < cfg.memory_servers; ++m) {
        bed.memory_devs[static_cast<std::size_t>(m)]->UnbindTelemetry();
      }
      bed.spot_dev->UnbindTelemetry();
      for (net::Link* link : bound_links) link->UnbindTelemetry();
      cfg.telemetry->tracer.SetClock([now = bed.sim.Now()] { return now; });
    }
  }

  static FanInConfig MakeFanInConfig(const ScaleWorkloadConfig& config,
                                     std::vector<int> pack_groups = {}) {
    FanInConfig fan;
    fan.clients = config.clients;
    fan.memory_servers = config.memory_servers;
    fan.client_cores = std::max(2, config.threads_per_client);
    fan.client_groups = config.client_groups;
    fan.client_propagation = config.client_propagation;
    fan.trunk_propagation = config.trunk_propagation;
    fan.split = config.split;
    fan.split_workers = config.split_workers;
    fan.pack_groups = std::move(pack_groups);
    fan.egress_queue_capacity = config.egress_queue_capacity;
    fan.ecn_threshold = config.ecn_threshold;
    fan.pfc = config.pfc;
    fan.dcqcn = config.dcqcn;
    fan.retransmit_timeout = config.retransmit_timeout;
    return fan;
  }

  // Shard selection: every component binds to the hub of the domain whose
  // thread mutates its cells.
  telemetry::Hub* HubFor(net::TopoNodeId node) {
    return shards.ForDomain(bed.partition.domain_of(node));
  }

  void BindTelemetry() {
    telemetry::Hub* hub = cfg.telemetry;
    if (hub == nullptr) return;
    hub->tracer.SetClock([this] { return bed.sim.Now(); });
    shards.Reset(hub, bed.partition.domain_count(), [this](int domain) {
      return telemetry::Clock(
          [sim = &bed.domains.domain_sim(domain)] { return sim->Now(); });
    });
    if (sim::DomainGroup* group = bed.group()) {
      // Debug builds pin each registry to its domain's worker thread.
      for (int d = 0; d < bed.partition.domain_count(); ++d) {
        group->SetDomainStartHook(d, [this, d] {
          shards.ForDomain(d)->metrics.BindToCurrentThread();
        });
      }
    }
    auto bind_host = [this](rdma::Device& dev, net::HostNic& nic,
                            net::TopoNodeId node, net::Switch& attach_sw,
                            net::TopoNodeId attach_node) {
      const std::string& name = bed.topo.node(node).name;
      dev.BindTelemetry(HubFor(node)->metrics, {{"node", name}});
      // Link counters mutate on the delivery side: the uplink delivers into
      // the attachment switch's domain (the group ToR for a two-tier
      // client), the egress link into the host domain.
      net::Link& up = nic.uplink();
      net::Link& down = attach_sw.EgressLink(nic.switch_port());
      up.BindTelemetry(HubFor(attach_node)->metrics,
                       {{"link", "uplink[" + name + "]"}});
      down.BindTelemetry(HubFor(node)->metrics,
                         {{"link", "egress[" + name + "]"}});
      bound_links.push_back(&up);
      bound_links.push_back(&down);
    };
    for (int k = 0; k < cfg.clients; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      bind_host(*bed.client_devs[kk], *bed.client_nics[kk],
                bed.client_node(k), bed.client_switch(k),
                bed.client_attach_node(k));
    }
    for (int m = 0; m < cfg.memory_servers; ++m) {
      const auto mm = static_cast<std::size_t>(m);
      bind_host(*bed.memory_devs[mm], *bed.memory_nics[mm],
                bed.memory_node(m), bed.sw, bed.switch_node());
    }
    bind_host(*bed.spot_dev, *bed.spot_nic, bed.spot_node(), bed.sw,
              bed.switch_node());
    if (sim::DomainGroup* group = bed.group()) {
      // Per-domain epoch accounting, one gauge set per shard so each value
      // is read on (and attributed to) its own domain. `bed` outlives
      // `shards` (member order), so the callbacks need no unregistration.
      // epochs_total / epochs_skipped are deterministic; barrier wait is
      // wall-clock — the `_wall` suffix marks it for the snapshot-equality
      // tests to filter.
      for (int d = 0; d < bed.partition.domain_count(); ++d) {
        telemetry::MetricRegistry& registry = shards.ForDomain(d)->metrics;
        const telemetry::Labels labels{{"domain", std::to_string(d)}};
        registry.RegisterCallbackGauge("sim_epochs_total", labels, [group, d] {
          return static_cast<std::int64_t>(group->epochs_total(d));
        });
        registry.RegisterCallbackGauge(
            "sim_epochs_skipped", labels, [group, d] {
              return static_cast<std::int64_t>(group->epochs_skipped(d));
            });
        registry.RegisterCallbackGauge(
            "sim_barrier_wait_ns_wall", labels, [group, d] {
              return static_cast<std::int64_t>(group->barrier_wait_ns(d));
            });
      }
    }
  }

  sim::SimThread& ThreadFor(int k, int t) {
    return *threads[static_cast<std::size_t>(k * cfg.threads_per_client + t)];
  }

  std::vector<std::pair<Nanos, Nanos>>& TraceFor(int k, int t) {
    return latency_traces[static_cast<std::size_t>(
        k * cfg.threads_per_client + t)];
  }

  ScaleWorkloadConfig cfg;
  FanInTestbed bed;
  std::vector<const rdma::MemoryRegion*> pool_mrs;
  // Declared before the clients and engines: their destructors unregister
  // callback gauges against the per-domain shard hubs, so the shards must
  // outlive them.
  telemetry::HubShards shards;
  std::vector<std::unique_ptr<core::CowbirdClient>> clients;
  std::unique_ptr<spot::SpotAgent> agent;
  std::unique_ptr<p4::CowbirdP4Engine> p4_engine;
  std::vector<std::unique_ptr<sim::SimThread>> threads;
  std::vector<std::vector<std::uint64_t>> ops;  // [client][thread]
  // One latency trace per (client, thread): (completion time, latency)
  // pairs, recorded only when cfg.sample_latency. Traces merge in fixed
  // (k, t) order after the run so the percentile set is independent of
  // worker count.
  std::vector<std::vector<std::pair<Nanos, Nanos>>> latency_traces;
  std::vector<net::Link*> bound_links;

  // Live-rebalance state (untouched unless cfg.migrate).
  enum class MigrationStage { kArmed, kCopying, kDraining, kDone };
  core::ClusterPool pool;
  Bytes slab_bytes = 0;
  net::NodeId p4_switch_id = 0;
  std::uint32_t reattach_qpn_base = 0;
  rdma::QpPair migrate_qp;
  std::optional<core::ClusterPool::MigrationPlan> migrate_plan;
  std::unique_ptr<core::RegionMigrator> migrator;
  std::optional<offload::InstanceProgress> migrate_resume;
  MigrationStage migration_stage = MigrationStage::kArmed;
  std::uint64_t migrations = 0;
  Nanos migrate_started_at = 0;
  Nanos migrate_cutover_at = 0;
  std::uint64_t ops_at_migrate_start = 0;
  std::uint64_t ops_at_cutover = 0;
};

// The async read loop of the hash workload (DriveCowbird), reads only —
// issue up to `window`, then harvest. Wiring is per (client, thread); the
// coroutine runs on the client's own domain.
sim::Task<void> DriveClient(ScaleHarness& h, int k, int t) {
  sim::SimThread& thread = h.ThreadFor(k, t);
  auto& ctx = h.clients[static_cast<std::size_t>(k)]->thread(t);
  Rng rng(h.cfg.seed * 7919 + static_cast<std::uint64_t>(k) * 131 +
          static_cast<std::uint64_t>(t));
  const core::PollId poll = ctx.PollCreate();
  std::vector<core::ReqId> done;
  done.reserve(static_cast<std::size_t>(h.cfg.window));
  std::uint64_t& counter =
      h.ops[static_cast<std::size_t>(k)][static_cast<std::size_t>(t)];
  // Opt-in latency bookkeeping. It draws no RNG values and charges no
  // simulated time, so op streams match a non-sampling run exactly.
  const bool sample = h.cfg.sample_latency;
  std::unordered_map<std::uint64_t, Nanos> issued_at;
  auto& trace = h.TraceFor(k, t);
  // Jittered back-off: each client parks for a slightly different interval,
  // so the fleet's completion polls decorrelate instead of marching as one
  // synchronized herd (deterministic — a function of the client index only).
  const Nanos idle = h.cfg.poll_idle +
                     h.cfg.poll_jitter * static_cast<Nanos>(k) +
                     h.cfg.poll_jitter * static_cast<Nanos>(t) * 7;
  int outstanding = 0;
  for (;;) {
    if (outstanding < h.cfg.window) {
      const std::uint64_t key = rng.Below(h.cfg.records);
      co_await thread.Work(h.cfg.app_compute, sim::CpuCategory::kCompute);
      const std::uint64_t slot =
          rng.Below(static_cast<std::uint64_t>(h.cfg.window));
      auto id = co_await ctx.AsyncRead(
          thread, kRegion, key * h.cfg.record_size,
          kHeapBase + t * kHeapStride + slot * h.cfg.record_size,
          static_cast<std::uint32_t>(h.cfg.record_size));
      if (id.has_value()) {
        ctx.PollAdd(poll, *id);
        if (sample) issued_at[id->value()] = thread.simulation().Now();
        ++outstanding;
        continue;
      }
    }
    co_await ctx.PollWait(thread, poll, done, h.cfg.window, 0);
    if (done.empty()) {
      co_await thread.Idle(idle);
      continue;
    }
    if (sample) {
      const Nanos now = thread.simulation().Now();
      for (const core::ReqId id : done) {
        const auto it = issued_at.find(id.value());
        if (it == issued_at.end()) continue;
        trace.emplace_back(now, now - it->second);
        issued_at.erase(it);
      }
    }
    for (std::size_t i = 0; i < done.size(); ++i) {
      co_await thread.Work(h.cfg.costs.CopyCost(h.cfg.record_size),
                           sim::CpuCategory::kCompute);
      ++counter;
    }
    outstanding -= static_cast<int>(done.size());
  }
}

// Event-rate profiling for the packed split: a short deterministic pre-run
// of the same fabric and workload under the one-domain-per-node split, whose
// per-domain event counts become the rate vector net::PackDomains balances.
// The pre-run is itself a split run, so its counts — and therefore the
// packing — are bit-identical for any worker count; and because the banded
// cross-event keys make outcomes horizon-policy-invariant, the rates need no
// policy pinning either. Telemetry, latency sampling, and migration are
// disabled: none of them change event streams, but the pre-run should stay
// cheap and side-effect-free.
std::vector<int> PackGroupsFor(const ScaleWorkloadConfig& config) {
  constexpr Nanos kProfileWindow = Micros(100);
  ScaleWorkloadConfig prof = config;
  prof.packed = false;
  prof.telemetry = nullptr;
  prof.sample_latency = false;
  prof.migrate = false;
  ScaleHarness h(prof);
  for (int k = 0; k < prof.clients; ++k) {
    sim::Simulation& csim = h.bed.domains.sim_for(h.bed.client_node(k));
    for (int t = 0; t < prof.threads_per_client; ++t) {
      csim.Spawn(DriveClient(h, k, t));
    }
  }
  h.bed.RunFor(kProfileWindow);
  // Under the per-node split, domain ids equal node ids (singletons in node
  // order), so the per-domain counters read out as per-node rates directly.
  const int n = h.bed.topo.node_count();
  std::vector<std::uint64_t> rates(static_cast<std::size_t>(n), 0);
  for (int node = 0; node < n; ++node) {
    rates[static_cast<std::size_t>(node)] =
        h.bed.domains.domain_sim(node).EventsProcessed();
  }
  net::Topology packed_topo = h.bed.topo;
  net::PackDomains(packed_topo, rates, config.pack_budget);
  std::vector<int> groups(static_cast<std::size_t>(n), 0);
  for (int node = 0; node < n; ++node) {
    groups[static_cast<std::size_t>(node)] = packed_topo.node(node).group;
  }
  return groups;
}

std::vector<std::uint64_t> PerClientOps(const ScaleHarness& h) {
  std::vector<std::uint64_t> totals;
  totals.reserve(static_cast<std::size_t>(h.cfg.clients));
  for (const auto& per_thread : h.ops) {
    std::uint64_t total = 0;
    for (const std::uint64_t count : per_thread) total += count;
    totals.push_back(total);
  }
  return totals;
}

}  // namespace

ScaleWorkloadResult RunScaleWorkload(const ScaleWorkloadConfig& config) {
  COWBIRD_CHECK(config.clients >= 1);
  COWBIRD_CHECK(config.memory_servers >= 1);
  std::vector<int> pack_groups;
  if (config.split && config.packed) pack_groups = PackGroupsFor(config);
  ScaleHarness h(config, std::move(pack_groups));
  if (sim::DomainGroup* group = h.bed.group()) {
    group->set_horizon_policy(config.horizon_policy);
  }
  for (int k = 0; k < config.clients; ++k) {
    sim::Simulation& csim = h.bed.domains.sim_for(h.bed.client_node(k));
    for (int t = 0; t < config.threads_per_client; ++t) {
      csim.Spawn(DriveClient(h, k, t));
    }
  }

  if (config.migrate) {
    // Pre-scheduled coordinator tick train (conservative PDES forbids
    // rescheduling a global event from inside one): one tick every
    // kMigrateTick from migrate_start to the end of the run.
    for (Nanos when = config.migrate_start;
         when < config.warmup + config.measure; when += kMigrateTick) {
      if (sim::DomainGroup* group = h.bed.group()) {
        group->ScheduleGlobal(when, [&h, when] { h.MigrationTick(when); });
      } else {
        h.bed.sim.ScheduleAt(when, [&h, when] { h.MigrationTick(when); });
      }
    }
  }

  sim::DomainGroup* group = h.bed.group();
  auto total_skipped = [&h, group] {
    std::uint64_t total = 0;
    for (int d = 0; d < h.bed.partition.domain_count(); ++d) {
      total += group->epochs_skipped(d);
    }
    return total;
  };
  h.bed.RunFor(config.warmup);
  const std::vector<std::uint64_t> warm = PerClientOps(h);
  const Nanos t0 = h.bed.domains.Now();
  const std::uint64_t events0 = h.bed.EventsProcessed();
  const std::uint64_t epochs0 = group != nullptr ? group->epochs() : 0;
  const std::uint64_t skipped0 = group != nullptr ? total_skipped() : 0;
  h.bed.RunFor(config.measure);
  const Nanos elapsed = h.bed.domains.Now() - t0;

  ScaleWorkloadResult result;
  result.domains = h.bed.partition.domain_count();
  if (group != nullptr) {
    result.epochs = group->epochs() - epochs0;
    result.epochs_skipped = total_skipped() - skipped0;
  }
  result.client_ops = PerClientOps(h);
  for (int k = 0; k < config.clients; ++k) {
    const auto kk = static_cast<std::size_t>(k);
    result.client_ops[kk] -= warm[kk];
    result.ops += result.client_ops[kk];
  }
  result.sim_events = h.bed.EventsProcessed() - events0;
  result.elapsed = elapsed;
  result.mops = Mops(result.ops, elapsed);

  if (config.sample_latency) {
    // Merge traces in fixed (client, thread) order and keep only ops that
    // completed inside the measure window.
    PercentileSampler sampler;
    for (const auto& trace : h.latency_traces) {
      for (const auto& [completed_at, latency] : trace) {
        if (completed_at <= t0) continue;
        sampler.Add(static_cast<double>(latency));
      }
    }
    result.latency_samples = sampler.count();
    if (sampler.count() > 0) {
      result.p50_latency = static_cast<Nanos>(sampler.Median());
      result.p99_latency = static_cast<Nanos>(sampler.P99());
    }
  }

  if (config.migrate) {
    result.migrations = h.migrations;
    if (h.migrator != nullptr) {
      result.migrate_bytes_copied = h.migrator->bytes_copied();
      result.migrate_dirty_marks = h.migrator->dirty_marks();
    }
    result.migrate_started_at = h.migrate_started_at;
    result.migrate_cutover_at = h.migrate_cutover_at;
    // Phase split of the measure window, defined only when the whole
    // migration happened inside it.
    if (h.migrations == 1 && h.migrate_started_at >= t0) {
      std::uint64_t warm_total = 0;
      for (const std::uint64_t w : warm) warm_total += w;
      const Nanos t_end = t0 + elapsed;
      const auto window_mops = [](std::uint64_t lo_ops, std::uint64_t hi_ops,
                                  Nanos lo, Nanos hi) {
        return hi > lo ? Mops(hi_ops - lo_ops, hi - lo) : 0.0;
      };
      result.mops_before = window_mops(warm_total, h.ops_at_migrate_start,
                                       t0, h.migrate_started_at);
      result.mops_during = window_mops(h.ops_at_migrate_start,
                                       h.ops_at_cutover,
                                       h.migrate_started_at,
                                       h.migrate_cutover_at);
      result.mops_after = window_mops(h.ops_at_cutover,
                                      warm_total + result.ops,
                                      h.migrate_cutover_at, t_end);
      if (config.sample_latency) {
        PercentileSampler before, during, after;
        for (const auto& trace : h.latency_traces) {
          for (const auto& [completed_at, latency] : trace) {
            if (completed_at <= t0) continue;
            PercentileSampler& phase =
                completed_at <= h.migrate_started_at ? before
                : completed_at <= h.migrate_cutover_at ? during
                                                       : after;
            phase.Add(static_cast<double>(latency));
          }
        }
        if (before.count() > 0) {
          result.p99_before = static_cast<Nanos>(before.P99());
        }
        if (during.count() > 0) {
          result.p99_during = static_cast<Nanos>(during.P99());
        }
        if (after.count() > 0) {
          result.p99_after = static_cast<Nanos>(after.P99());
        }
      }
    }
  }

  result.switch_drops = h.bed.switch_drops();
  result.ecn_marked = h.bed.sw.ecn_marked();
  result.pfc_pauses = h.bed.sw.pfc_pauses_sent();
  for (const auto& leaf : h.bed.group_tors) {
    result.ecn_marked += leaf->ecn_marked();
    result.pfc_pauses += leaf->pfc_pauses_sent();
  }
  auto accumulate_dev = [&result](rdma::Device& dev) {
    result.retransmissions += dev.total_retransmissions();
    if (rdma::CongestionManager* cm = dev.congestion()) {
      result.cnps += cm->cnps_received();
    }
  };
  for (auto& dev : h.bed.client_devs) accumulate_dev(*dev);
  for (auto& dev : h.bed.memory_devs) accumulate_dev(*dev);
  accumulate_dev(*h.bed.spot_dev);

  if (config.telemetry != nullptr) {
    result.telemetry = config.telemetry->metrics.TakeSnapshot();
    h.shards.MergeInto(result.telemetry);
  }
  return result;
}

}  // namespace cowbird::workload
