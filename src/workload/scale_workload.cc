#include "workload/scale_workload.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/client.h"
#include "p4/engine.h"
#include "rdma/congestion.h"
#include "spot/setup.h"
#include "workload/testbed.h"

namespace cowbird::workload {
namespace {

constexpr std::uint64_t kPoolBase = 0x1000'0000;
constexpr std::uint64_t kHeapBase = 0x8000'0000;
constexpr std::uint64_t kHeapStride = MiB(4);
constexpr std::uint16_t kRegion = 1;

// Incast collapses the striping: every client hits memory server 0.
int ServerFor(const ScaleWorkloadConfig& cfg, int k) {
  return cfg.incast ? 0 : k % cfg.memory_servers;
}

struct ScaleHarness {
  explicit ScaleHarness(const ScaleWorkloadConfig& config)
      : cfg(config), bed(MakeFanInConfig(config)) {
    latency_traces.resize(
        static_cast<std::size_t>(cfg.clients * cfg.threads_per_client));
    const Bytes pool_bytes = cfg.records * cfg.record_size + KiB(4);
    for (int m = 0; m < cfg.memory_servers; ++m) {
      pool_mrs.push_back(
          bed.memory_devs[static_cast<std::size_t>(m)]->RegisterMemory(
              kPoolBase, pool_bytes));
      bed.memory_mems[static_cast<std::size_t>(m)]->PreFault(kPoolBase,
                                                             pool_bytes);
    }

    BindTelemetry();

    // Per-client Cowbird instances, every one offloaded through the same
    // engine (fan-in). Client k's region lives on memory server k % M.
    for (int k = 0; k < cfg.clients; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      for (int t = 0; t < cfg.threads_per_client; ++t) {
        bed.client_mems[kk]->PreFault(kHeapBase + t * kHeapStride,
                                      kHeapStride);
        threads.push_back(std::make_unique<sim::SimThread>(
            *bed.client_machines[kk],
            "app-" + std::to_string(k) + "-" + std::to_string(t)));
      }
      core::CowbirdClient::Config cc;
      cc.layout.base = 0x10000;
      cc.layout.threads = cfg.threads_per_client;
      cc.layout.meta_slots = 4096;
      cc.layout.data_capacity = MiB(1);
      cc.layout.resp_capacity = MiB(1);
      cc.costs = cfg.costs;
      cc.telemetry = HubFor(bed.client_node(k));
      clients.push_back(std::make_unique<core::CowbirdClient>(
          *bed.client_devs[kk], cc));
      const int server = ServerFor(cfg, k);
      clients.back()->RegisterRegion(core::RegionInfo{
          kRegion, bed.memory_id(server), kPoolBase,
          pool_mrs[static_cast<std::size_t>(server)]->rkey, pool_bytes});
      ops.emplace_back(static_cast<std::size_t>(cfg.threads_per_client), 0);
    }

    if (cfg.paradigm == Paradigm::kCowbirdP4) {
      p4::CowbirdP4Engine::Config ec;
      ec.telemetry = HubFor(bed.switch_node());
      // When the NICs run DCQCN, the switch-generated packets join the ECN
      // loop too (and the engine reflects CNPs to the memory hosts).
      ec.ecn_capable = cfg.dcqcn.enabled;
      p4_engine = std::make_unique<p4::CowbirdP4Engine>(bed.sw, ec);
      for (int k = 0; k < cfg.clients; ++k) {
        const int server = ServerFor(cfg, k);
        auto conn = p4::ConnectP4Engine(
            *p4_engine, ec.switch_node_id,
            *bed.client_devs[static_cast<std::size_t>(k)],
            *bed.memory_devs[static_cast<std::size_t>(server)],
            0x800 + 0x20 * static_cast<std::uint32_t>(k));
        p4_engine->AddInstance(clients[static_cast<std::size_t>(k)]
                                   ->descriptor(),
                               conn);
      }
      p4_engine->Start();
    } else {
      COWBIRD_CHECK(cfg.paradigm == Paradigm::kCowbird);
      spot::SpotAgent::Config ac = cfg.agent;
      ac.costs = cfg.costs;
      ac.telemetry = HubFor(bed.spot_node());
      agent = std::make_unique<spot::SpotAgent>(*bed.spot_dev,
                                                *bed.spot_machine, ac);
      for (int k = 0; k < cfg.clients; ++k) {
        const int server = ServerFor(cfg, k);
        rdma::Device* memories[] = {
            bed.memory_devs[static_cast<std::size_t>(server)].get()};
        auto conn = spot::ConnectSpotEngine(
            *bed.spot_dev, *bed.client_devs[static_cast<std::size_t>(k)],
            memories);
        agent->AddInstance(clients[static_cast<std::size_t>(k)]
                               ->descriptor(),
                           conn.to_compute, conn.compute_cq, conn.to_memory,
                           conn.memory_cqs);
      }
      agent->Start();
    }
  }

  ~ScaleHarness() {
    if (cfg.telemetry != nullptr) {
      for (int k = 0; k < cfg.clients; ++k) {
        bed.client_devs[static_cast<std::size_t>(k)]->UnbindTelemetry();
      }
      for (int m = 0; m < cfg.memory_servers; ++m) {
        bed.memory_devs[static_cast<std::size_t>(m)]->UnbindTelemetry();
      }
      bed.spot_dev->UnbindTelemetry();
      for (net::Link* link : bound_links) link->UnbindTelemetry();
      cfg.telemetry->tracer.SetClock([now = bed.sim.Now()] { return now; });
    }
  }

  static FanInConfig MakeFanInConfig(const ScaleWorkloadConfig& config) {
    FanInConfig fan;
    fan.clients = config.clients;
    fan.memory_servers = config.memory_servers;
    fan.client_cores = std::max(2, config.threads_per_client);
    fan.split = config.split;
    fan.split_workers = config.split_workers;
    fan.egress_queue_capacity = config.egress_queue_capacity;
    fan.ecn_threshold = config.ecn_threshold;
    fan.pfc = config.pfc;
    fan.dcqcn = config.dcqcn;
    fan.retransmit_timeout = config.retransmit_timeout;
    return fan;
  }

  // Shard selection: every component binds to the hub of the domain whose
  // thread mutates its cells.
  telemetry::Hub* HubFor(net::TopoNodeId node) {
    return shards.ForDomain(bed.partition.domain_of(node));
  }

  void BindTelemetry() {
    telemetry::Hub* hub = cfg.telemetry;
    if (hub == nullptr) return;
    hub->tracer.SetClock([this] { return bed.sim.Now(); });
    shards.Reset(hub, bed.partition.domain_count(), [this](int domain) {
      return telemetry::Clock(
          [sim = &bed.domains.domain_sim(domain)] { return sim->Now(); });
    });
    if (sim::DomainGroup* group = bed.group()) {
      // Debug builds pin each registry to its domain's worker thread.
      for (int d = 0; d < bed.partition.domain_count(); ++d) {
        group->SetDomainStartHook(d, [this, d] {
          shards.ForDomain(d)->metrics.BindToCurrentThread();
        });
      }
    }
    auto bind_host = [this](rdma::Device& dev, net::HostNic& nic,
                            net::TopoNodeId node) {
      const std::string& name = bed.topo.node(node).name;
      dev.BindTelemetry(HubFor(node)->metrics, {{"node", name}});
      // Link counters mutate on the delivery side: the uplink delivers into
      // the switch domain, the egress link into the host domain.
      net::Link& up = nic.uplink();
      net::Link& down = bed.sw.EgressLink(nic.switch_port());
      up.BindTelemetry(HubFor(bed.switch_node())->metrics,
                       {{"link", "uplink[" + name + "]"}});
      down.BindTelemetry(HubFor(node)->metrics,
                         {{"link", "egress[" + name + "]"}});
      bound_links.push_back(&up);
      bound_links.push_back(&down);
    };
    for (int k = 0; k < cfg.clients; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      bind_host(*bed.client_devs[kk], *bed.client_nics[kk],
                bed.client_node(k));
    }
    for (int m = 0; m < cfg.memory_servers; ++m) {
      const auto mm = static_cast<std::size_t>(m);
      bind_host(*bed.memory_devs[mm], *bed.memory_nics[mm],
                bed.memory_node(m));
    }
    bind_host(*bed.spot_dev, *bed.spot_nic, bed.spot_node());
  }

  sim::SimThread& ThreadFor(int k, int t) {
    return *threads[static_cast<std::size_t>(k * cfg.threads_per_client + t)];
  }

  std::vector<std::pair<Nanos, Nanos>>& TraceFor(int k, int t) {
    return latency_traces[static_cast<std::size_t>(
        k * cfg.threads_per_client + t)];
  }

  ScaleWorkloadConfig cfg;
  FanInTestbed bed;
  std::vector<const rdma::MemoryRegion*> pool_mrs;
  std::vector<std::unique_ptr<core::CowbirdClient>> clients;
  std::unique_ptr<spot::SpotAgent> agent;
  std::unique_ptr<p4::CowbirdP4Engine> p4_engine;
  std::vector<std::unique_ptr<sim::SimThread>> threads;
  std::vector<std::vector<std::uint64_t>> ops;  // [client][thread]
  // One latency trace per (client, thread): (completion time, latency)
  // pairs, recorded only when cfg.sample_latency. Traces merge in fixed
  // (k, t) order after the run so the percentile set is independent of
  // worker count.
  std::vector<std::vector<std::pair<Nanos, Nanos>>> latency_traces;
  telemetry::HubShards shards;
  std::vector<net::Link*> bound_links;
};

// The async read loop of the hash workload (DriveCowbird), reads only —
// issue up to `window`, then harvest. Wiring is per (client, thread); the
// coroutine runs on the client's own domain.
sim::Task<void> DriveClient(ScaleHarness& h, int k, int t) {
  sim::SimThread& thread = h.ThreadFor(k, t);
  auto& ctx = h.clients[static_cast<std::size_t>(k)]->thread(t);
  Rng rng(h.cfg.seed * 7919 + static_cast<std::uint64_t>(k) * 131 +
          static_cast<std::uint64_t>(t));
  const core::PollId poll = ctx.PollCreate();
  std::vector<core::ReqId> done;
  done.reserve(static_cast<std::size_t>(h.cfg.window));
  std::uint64_t& counter =
      h.ops[static_cast<std::size_t>(k)][static_cast<std::size_t>(t)];
  // Opt-in latency bookkeeping. It draws no RNG values and charges no
  // simulated time, so op streams match a non-sampling run exactly.
  const bool sample = h.cfg.sample_latency;
  std::unordered_map<std::uint64_t, Nanos> issued_at;
  auto& trace = h.TraceFor(k, t);
  int outstanding = 0;
  for (;;) {
    if (outstanding < h.cfg.window) {
      const std::uint64_t key = rng.Below(h.cfg.records);
      co_await thread.Work(h.cfg.app_compute, sim::CpuCategory::kCompute);
      const std::uint64_t slot =
          rng.Below(static_cast<std::uint64_t>(h.cfg.window));
      auto id = co_await ctx.AsyncRead(
          thread, kRegion, key * h.cfg.record_size,
          kHeapBase + t * kHeapStride + slot * h.cfg.record_size,
          static_cast<std::uint32_t>(h.cfg.record_size));
      if (id.has_value()) {
        ctx.PollAdd(poll, *id);
        if (sample) issued_at[id->value()] = thread.simulation().Now();
        ++outstanding;
        continue;
      }
    }
    co_await ctx.PollWait(thread, poll, done, h.cfg.window, 0);
    if (done.empty()) {
      co_await thread.Idle(300);
      continue;
    }
    if (sample) {
      const Nanos now = thread.simulation().Now();
      for (const core::ReqId id : done) {
        const auto it = issued_at.find(id.value());
        if (it == issued_at.end()) continue;
        trace.emplace_back(now, now - it->second);
        issued_at.erase(it);
      }
    }
    for (std::size_t i = 0; i < done.size(); ++i) {
      co_await thread.Work(h.cfg.costs.CopyCost(h.cfg.record_size),
                           sim::CpuCategory::kCompute);
      ++counter;
    }
    outstanding -= static_cast<int>(done.size());
  }
}

std::vector<std::uint64_t> PerClientOps(const ScaleHarness& h) {
  std::vector<std::uint64_t> totals;
  totals.reserve(static_cast<std::size_t>(h.cfg.clients));
  for (const auto& per_thread : h.ops) {
    std::uint64_t total = 0;
    for (const std::uint64_t count : per_thread) total += count;
    totals.push_back(total);
  }
  return totals;
}

}  // namespace

ScaleWorkloadResult RunScaleWorkload(const ScaleWorkloadConfig& config) {
  COWBIRD_CHECK(config.clients >= 1);
  COWBIRD_CHECK(config.memory_servers >= 1);
  ScaleHarness h(config);
  for (int k = 0; k < config.clients; ++k) {
    sim::Simulation& csim = h.bed.domains.sim_for(h.bed.client_node(k));
    for (int t = 0; t < config.threads_per_client; ++t) {
      csim.Spawn(DriveClient(h, k, t));
    }
  }

  h.bed.RunFor(config.warmup);
  const std::vector<std::uint64_t> warm = PerClientOps(h);
  const Nanos t0 = h.bed.domains.Now();
  const std::uint64_t events0 = h.bed.EventsProcessed();
  h.bed.RunFor(config.measure);
  const Nanos elapsed = h.bed.domains.Now() - t0;

  ScaleWorkloadResult result;
  result.client_ops = PerClientOps(h);
  for (int k = 0; k < config.clients; ++k) {
    const auto kk = static_cast<std::size_t>(k);
    result.client_ops[kk] -= warm[kk];
    result.ops += result.client_ops[kk];
  }
  result.sim_events = h.bed.EventsProcessed() - events0;
  result.elapsed = elapsed;
  result.mops = Mops(result.ops, elapsed);

  if (config.sample_latency) {
    // Merge traces in fixed (client, thread) order and keep only ops that
    // completed inside the measure window.
    PercentileSampler sampler;
    for (const auto& trace : h.latency_traces) {
      for (const auto& [completed_at, latency] : trace) {
        if (completed_at <= t0) continue;
        sampler.Add(static_cast<double>(latency));
      }
    }
    result.latency_samples = sampler.count();
    if (sampler.count() > 0) {
      result.p50_latency = static_cast<Nanos>(sampler.Median());
      result.p99_latency = static_cast<Nanos>(sampler.P99());
    }
  }

  result.switch_drops = h.bed.sw.total_drops();
  result.ecn_marked = h.bed.sw.ecn_marked();
  result.pfc_pauses = h.bed.sw.pfc_pauses_sent();
  auto accumulate_dev = [&result](rdma::Device& dev) {
    result.retransmissions += dev.total_retransmissions();
    if (rdma::CongestionManager* cm = dev.congestion()) {
      result.cnps += cm->cnps_received();
    }
  };
  for (auto& dev : h.bed.client_devs) accumulate_dev(*dev);
  for (auto& dev : h.bed.memory_devs) accumulate_dev(*dev);
  accumulate_dev(*h.bed.spot_dev);

  if (config.telemetry != nullptr) {
    result.telemetry = config.telemetry->metrics.TakeSnapshot();
    h.shards.MergeInto(result.telemetry);
  }
  return result;
}

}  // namespace cowbird::workload
