// The rack-scale fan-in workload: K compute clients and M memory servers
// around one top-of-rack switch (FanInTestbed), every client running the
// async read loop of the hash workload against a pool on memory server
// k % M, all offloaded through one engine — a single Cowbird-Spot agent
// serving K instances (fan-in), or the P4 engine on the switch.
//
// The default shape is the 16-node scaling fabric of the ROADMAP: 12
// clients + 2 memory servers + 1 spot host + 1 switch. With `split` the
// testbed partitions one PDES domain per node; a split run's per-client
// operation counts are bit-identical for any worker count, which the
// scale tests and the sim_throughput split-scaling section pin.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "rdma/params.h"
#include "sim/parallel.h"
#include "spot/agent.h"
#include "telemetry/hub.h"
#include "workload/hash_workload.h"

namespace cowbird::workload {

struct ScaleWorkloadConfig {
  // Engine serving every client: Paradigm::kCowbird (one spot agent,
  // fan-in) or Paradigm::kCowbirdP4 (engine on the switch).
  Paradigm paradigm = Paradigm::kCowbird;
  int clients = 12;
  int memory_servers = 2;
  int threads_per_client = 2;
  Bytes record_size = 128;
  std::uint64_t records = 100'000;  // per memory-server pool
  Nanos app_compute = 60;
  int window = 32;
  // Back-off between completion polls while the window is full and nothing
  // has finished. The default spins hard; completions are probe-paced
  // (micro-seconds end to end), so coarser values model a client that
  // parks instead of busy-polling — and stop the idle polls from flooring
  // every domain's epoch horizon at the client-link lookahead.
  Nanos poll_idle = 300;
  // Per-client increment on top of poll_idle (client k parks for
  // poll_idle + k * poll_jitter). Jittered back-off is how real fleets
  // avoid herd synchronization; here it also decorrelates the poll streams
  // so the per-group epoch horizons see sparse local activity instead of
  // fabric-wide lockstep bursts. Deterministic: a function of the client
  // index only.
  Nanos poll_jitter = 0;
  Nanos warmup = Micros(200);
  Nanos measure = Millis(1);
  std::uint64_t seed = 1;
  spot::SpotAgent::Config agent;
  // kCowbirdP4 only: overrides the engine's probe pacing (0 keeps the
  // engine default of one probe per 2 us). Sparse probing models a switch
  // pipeline that amortizes ring fetches; it also keeps the probe packets
  // from being the densest event stream in every rack neighborhood.
  Nanos p4_probe_interval = 0;
  rdma::CostModel costs;
  // Two-tier fabric: > 1 spreads the clients over this many per-group ToR
  // switches, each trunked into the core (FanInConfig::client_groups). The
  // default keeps the flat single-switch fan-in.
  int client_groups = 1;
  // Client-uplink propagation delay; 0 keeps the fabric profile's uniform
  // link_propagation. Short in-rack DACs (tens of ns) make the lookahead
  // graph heterogeneous, which is where per-edge horizons pull away from
  // the global min (FanInConfig::client_propagation).
  Nanos client_propagation = 0;
  // ToR <-> core trunk propagation; 0 keeps the fabric profile's uniform
  // link_propagation. Hall-scale optical runs are an order of magnitude
  // longer than in-rack DACs (FanInConfig::trunk_propagation); the wider
  // the trunk lookahead, the coarser the per-edge epoch steps each client
  // group can take independently of the core's event density.
  Nanos trunk_propagation = 0;
  // One PDES domain per topology node, executed by `split_workers` threads
  // (0 → hardware concurrency). Bit-deterministic for any worker count.
  bool split = false;
  int split_workers = 0;
  // Split only: pack the per-node domains down to `pack_budget` domains
  // (net::PackDomains) using per-node event rates measured by a short
  // deterministic profiling pre-run. The budget is an explicit constant —
  // never the worker count — so a packed run's outcome stays bit-identical
  // for any number of workers.
  bool packed = false;
  int pack_budget = 8;
  // Split only: the epoch-horizon policy. kPerEdge (default) computes
  // per-domain LBTS horizons at each barrier; kGlobalMin is the historical
  // single min-lookahead horizon, kept selectable for A/B epoch accounting.
  // Outcomes are policy-invariant; only epoch counts move.
  sim::HorizonPolicy horizon_policy = sim::HorizonPolicy::kPerEdge;
  // Optional telemetry: sharded per domain (telemetry::HubShards) and merged
  // N-way into the caller's hub after the run.
  telemetry::Hub* telemetry = nullptr;
  // Incast: every client targets memory server 0 instead of k % M, so all
  // K client flows converge on one switch egress port.
  bool incast = false;
  // Fabric congestion profile, passed through to the testbed. Defaults
  // keep the fabric byte-identical to the uncontended runs.
  Bytes egress_queue_capacity = MiB(4);
  Bytes ecn_threshold = 0;
  bool pfc = false;
  rdma::DcqcnConfig dcqcn;
  // Go-Back-N timeout for every NIC. Raise well above the congested RTT
  // when DCQCN paces flows, or pacing delays read as loss and the rewinds
  // re-execute whole read windows (see FanInConfig::retransmit_timeout).
  Nanos retransmit_timeout = Micros(100);
  // Records per-op issue→completion latency and reports p50/p99 over the
  // measure window. Off by default; enabling draws no extra RNG values, so
  // the op streams are unchanged.
  bool sample_latency = false;
  // Live rebalance (requires memory_servers >= 2): client 0's region is
  // allocated from a ClusterPool on memory server 0 and, at `migrate_start`
  // (absolute sim time, warmup included), live-migrated to memory server 1
  // while every client keeps issuing — copy pass, cutover, re-attach, all
  // under the foreground read traffic. Off by default; a non-migrating run
  // is byte-identical to a pre-rebalance build.
  bool migrate = false;
  Nanos migrate_start = Micros(400);
  Bytes migrate_chunk = KiB(64);
  int migrate_window = 4;  // outstanding copy WRITEs
};

struct ScaleWorkloadResult {
  std::uint64_t ops = 0;  // total over the measure window
  std::vector<std::uint64_t> client_ops;  // per client, the determinism pin
  std::uint64_t sim_events = 0;
  Nanos elapsed = 0;
  double mops = 0;
  // Split-run epoch accounting over the measure window (zero when serial).
  // `epochs` counts barrier rounds; `epochs_skipped` sums the per-domain
  // rounds a domain sat out because its horizon granted no work. Both are
  // deterministic, so the horizon A/B benchmarks can gate on them.
  std::uint64_t epochs = 0;
  std::uint64_t epochs_skipped = 0;
  int domains = 0;
  telemetry::Snapshot telemetry;  // filled when config.telemetry was set
  // Measure-window latency percentiles (only when config.sample_latency).
  Nanos p50_latency = 0;
  Nanos p99_latency = 0;
  std::uint64_t latency_samples = 0;
  // Whole-run congestion counters (warmup included).
  std::uint64_t switch_drops = 0;
  std::uint64_t ecn_marked = 0;
  std::uint64_t pfc_pauses = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t cnps = 0;  // CNPs received across every NIC
  // Live-rebalance observability (all zero unless config.migrate). The
  // before/during/after split covers the measure window only: before ends
  // at migrate_start, during spans copy + cutover, after is post-cutover
  // steady state. Phase p99s need config.sample_latency too.
  std::uint64_t migrations = 0;
  std::uint64_t migrate_bytes_copied = 0;
  std::uint64_t migrate_dirty_marks = 0;
  Nanos migrate_started_at = 0;
  Nanos migrate_cutover_at = 0;
  double mops_before = 0;
  double mops_during = 0;
  double mops_after = 0;
  Nanos p99_before = 0;
  Nanos p99_during = 0;
  Nanos p99_after = 0;
};

ScaleWorkloadResult RunScaleWorkload(const ScaleWorkloadConfig& config);

}  // namespace cowbird::workload
