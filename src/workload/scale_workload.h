// The rack-scale fan-in workload: K compute clients and M memory servers
// around one top-of-rack switch (FanInTestbed), every client running the
// async read loop of the hash workload against a pool on memory server
// k % M, all offloaded through one engine — a single Cowbird-Spot agent
// serving K instances (fan-in), or the P4 engine on the switch.
//
// The default shape is the 16-node scaling fabric of the ROADMAP: 12
// clients + 2 memory servers + 1 spot host + 1 switch. With `split` the
// testbed partitions one PDES domain per node; a split run's per-client
// operation counts are bit-identical for any worker count, which the
// scale tests and the sim_throughput split-scaling section pin.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "rdma/params.h"
#include "spot/agent.h"
#include "telemetry/hub.h"
#include "workload/hash_workload.h"

namespace cowbird::workload {

struct ScaleWorkloadConfig {
  // Engine serving every client: Paradigm::kCowbird (one spot agent,
  // fan-in) or Paradigm::kCowbirdP4 (engine on the switch).
  Paradigm paradigm = Paradigm::kCowbird;
  int clients = 12;
  int memory_servers = 2;
  int threads_per_client = 2;
  Bytes record_size = 128;
  std::uint64_t records = 100'000;  // per memory-server pool
  Nanos app_compute = 60;
  int window = 32;
  Nanos warmup = Micros(200);
  Nanos measure = Millis(1);
  std::uint64_t seed = 1;
  spot::SpotAgent::Config agent;
  rdma::CostModel costs;
  // One PDES domain per topology node, executed by `split_workers` threads
  // (0 → hardware concurrency). Bit-deterministic for any worker count.
  bool split = false;
  int split_workers = 0;
  // Optional telemetry: sharded per domain (telemetry::HubShards) and merged
  // N-way into the caller's hub after the run.
  telemetry::Hub* telemetry = nullptr;
  // Incast: every client targets memory server 0 instead of k % M, so all
  // K client flows converge on one switch egress port.
  bool incast = false;
  // Fabric congestion profile, passed through to the testbed. Defaults
  // keep the fabric byte-identical to the uncontended runs.
  Bytes egress_queue_capacity = MiB(4);
  Bytes ecn_threshold = 0;
  bool pfc = false;
  rdma::DcqcnConfig dcqcn;
  // Go-Back-N timeout for every NIC. Raise well above the congested RTT
  // when DCQCN paces flows, or pacing delays read as loss and the rewinds
  // re-execute whole read windows (see FanInConfig::retransmit_timeout).
  Nanos retransmit_timeout = Micros(100);
  // Records per-op issue→completion latency and reports p50/p99 over the
  // measure window. Off by default; enabling draws no extra RNG values, so
  // the op streams are unchanged.
  bool sample_latency = false;
  // Live rebalance (requires memory_servers >= 2): client 0's region is
  // allocated from a ClusterPool on memory server 0 and, at `migrate_start`
  // (absolute sim time, warmup included), live-migrated to memory server 1
  // while every client keeps issuing — copy pass, cutover, re-attach, all
  // under the foreground read traffic. Off by default; a non-migrating run
  // is byte-identical to a pre-rebalance build.
  bool migrate = false;
  Nanos migrate_start = Micros(400);
  Bytes migrate_chunk = KiB(64);
  int migrate_window = 4;  // outstanding copy WRITEs
};

struct ScaleWorkloadResult {
  std::uint64_t ops = 0;  // total over the measure window
  std::vector<std::uint64_t> client_ops;  // per client, the determinism pin
  std::uint64_t sim_events = 0;
  Nanos elapsed = 0;
  double mops = 0;
  telemetry::Snapshot telemetry;  // filled when config.telemetry was set
  // Measure-window latency percentiles (only when config.sample_latency).
  Nanos p50_latency = 0;
  Nanos p99_latency = 0;
  std::uint64_t latency_samples = 0;
  // Whole-run congestion counters (warmup included).
  std::uint64_t switch_drops = 0;
  std::uint64_t ecn_marked = 0;
  std::uint64_t pfc_pauses = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t cnps = 0;  // CNPs received across every NIC
  // Live-rebalance observability (all zero unless config.migrate). The
  // before/during/after split covers the measure window only: before ends
  // at migrate_start, during spans copy + cutover, after is post-cutover
  // steady state. Phase p99s need config.sample_latency too.
  std::uint64_t migrations = 0;
  std::uint64_t migrate_bytes_copied = 0;
  std::uint64_t migrate_dirty_marks = 0;
  Nanos migrate_started_at = 0;
  Nanos migrate_cutover_at = 0;
  double mops_before = 0;
  double mops_during = 0;
  double mops_after = 0;
  Nanos p99_before = 0;
  Nanos p99_during = 0;
  Nanos p99_after = 0;
};

ScaleWorkloadResult RunScaleWorkload(const ScaleWorkloadConfig& config);

}  // namespace cowbird::workload
