// The evaluation testbed (Section 7) as a reusable object: one switch,
// a compute node (16 logical cores, as Xeon Silver 4110 with HT), a memory
// pool node, a spot node (1 core granted to the Cowbird-Spot agent), and a
// bystander node for contending traffic (Figure 14). All links 100 Gbps
// except the bystander's 25 Gbps NIC, matching the paper's setup.
//
// Domains are derived from an explicit net::Topology: every host and the
// switch is a topology node, every attachment an edge carrying its
// propagation delay. With `split_domains` the compute host partitions into
// its own PDES domain while the switch and the memory/spot/bystander hosts
// fuse into a second one — the PR 5 two-way cut expressed as the trivial
// grouping of the general partitioner. The cut links' propagation delay is
// the conservative lookahead. In the default serial mode the whole graph is
// one partition group: `esim` aliases `sim` and every construction and
// schedule happens exactly as before — the chaos parity goldens pin this.
//
// FanInTestbed below generalizes the same wiring to K compute clients and M
// memory servers around one switch (plus a spot host): the rack-size
// fan-in fabric the scaling workload runs on, with one domain per node when
// split.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/sparse_memory.h"
#include "net/switch.h"
#include "net/topology.h"
#include "rdma/device.h"
#include "rdma/params.h"
#include "sim/parallel.h"
#include "sim/simulation.h"
#include "sim/thread.h"

namespace cowbird::workload {

struct Testbed {
  static constexpr net::NodeId kComputeId = 1;
  static constexpr net::NodeId kMemoryId = 2;
  static constexpr net::NodeId kSpotId = 3;
  static constexpr net::NodeId kBystanderId = 4;

  // Topology node ids (node 0 first → compute is always domain 0).
  static constexpr net::TopoNodeId kComputeNode = 0;
  static constexpr net::TopoNodeId kSwitchNode = 1;
  static constexpr net::TopoNodeId kMemoryNode = 2;
  static constexpr net::TopoNodeId kSpotNode = 3;
  static constexpr net::TopoNodeId kBystanderNode = 4;

  rdma::FabricParams fabric;
  rdma::NicConfig nic_config;
  sim::Simulation sim;  // compute-node domain (domain 0 when split)
  net::Topology topo;
  net::Partition partition;
  net::FabricDomains domains;
  // Engine-side event loop: a real second Simulation when split, otherwise
  // a reference back to `sim` so serial wiring is byte-identical.
  sim::Simulation& esim;
  sim::DomainGroup* group;  // null when serial
  net::Switch sw;
  net::HostNic compute_nic;
  net::HostNic memory_nic;
  net::HostNic spot_nic;
  net::HostNic bystander_nic;
  SparseMemory compute_mem;
  SparseMemory memory_mem;
  SparseMemory spot_mem;
  rdma::Device compute_dev;
  rdma::Device memory_dev;
  rdma::Device spot_dev;
  sim::Machine compute_machine;
  sim::Machine memory_machine;
  sim::Machine spot_machine;

  static net::Topology BuildTopo(Nanos propagation, bool split_domains) {
    net::Topology topo;
    const net::TopoNodeId compute = topo.AddNode(
        net::TopoNodeKind::kComputeHost, "compute", kComputeId);
    const net::TopoNodeId tor =
        topo.AddNode(net::TopoNodeKind::kSwitch, "switch");
    const net::TopoNodeId memory =
        topo.AddNode(net::TopoNodeKind::kMemoryServer, "memory", kMemoryId);
    const net::TopoNodeId spot =
        topo.AddNode(net::TopoNodeKind::kSpotHost, "spot", kSpotId);
    const net::TopoNodeId bystander = topo.AddNode(
        net::TopoNodeKind::kBystanderHost, "bystander", kBystanderId);
    topo.AddEdge(compute, tor, propagation);
    topo.AddEdge(memory, tor, propagation);
    topo.AddEdge(spot, tor, propagation);
    topo.AddEdge(bystander, tor, propagation);
    if (split_domains) {
      // The two-way cut at the compute attachment: compute alone, engine
      // side fused. The general partitioner reduces to PR 5's layout.
      topo.SetGroup(compute, 0);
      topo.SetGroup(tor, 1);
      topo.SetGroup(memory, 1);
      topo.SetGroup(spot, 1);
      topo.SetGroup(bystander, 1);
    } else {
      topo.GroupAll(0);
    }
    return topo;
  }

  explicit Testbed(int compute_cores = 16,
                   BitRate compute_uplink = BitRate::Gbps(100),
                   bool split_domains = false, int split_workers = 0)
      : topo(BuildTopo(fabric.link_propagation, split_domains)),
        partition(net::PartitionTopology(topo)),
        // Domain registration happens here, before ConnectTo: SetDestination
        // inspects domain ids to recognize the cut and register its CutEdge.
        domains(sim, partition, split_workers),
        esim(domains.sim_for(kSwitchNode)),
        group(domains.group()),
        sw(esim,
           net::Switch::Config{.pipeline_latency = fabric.switch_pipeline}),
        compute_nic(sim, kComputeId, compute_uplink,
                    fabric.link_propagation),
        memory_nic(esim, kMemoryId, fabric.host_link,
                   fabric.link_propagation),
        spot_nic(esim, kSpotId, fabric.host_link, fabric.link_propagation),
        bystander_nic(esim, kBystanderId, BitRate::Gbps(25),
                      fabric.link_propagation),
        compute_dev(compute_nic, compute_mem, nic_config),
        memory_dev(memory_nic, memory_mem, nic_config),
        spot_dev(spot_nic, spot_mem, nic_config),
        compute_machine(sim, compute_cores),
        memory_machine(esim, 8),
        spot_machine(esim, 1) {
    COWBIRD_CHECK(partition.domain_count() == (split_domains ? 2 : 1));
    COWBIRD_CHECK(!partition.zero_lookahead_error());
    compute_nic.ConnectTo(sw, "compute");
    memory_nic.ConnectTo(sw, "memory");
    spot_nic.ConnectTo(sw, "spot");
    bystander_nic.ConnectTo(sw, "bystander");
  }

  bool split() const { return group != nullptr; }

  // Run the whole testbed — the group when split, the single loop otherwise.
  void Run() { domains.Run(); }
  void RunFor(Nanos duration) { domains.RunFor(duration); }
  std::uint64_t EventsProcessed() const { return domains.EventsProcessed(); }
};

// K compute clients and M memory servers fanning into one top-of-rack
// switch, plus one spot host running the offload engine — the rack-size
// fabric of the scaling workload (defaults: 12 + 2 + spot + switch = 16
// nodes). When `split`, every node partitions into its own PDES domain
// (N = clients + memory_servers + 2) executed by `split_workers` threads;
// serial fuses the whole graph into one domain on the caller's loop.
struct FanInConfig {
  int clients = 12;
  int memory_servers = 2;
  int client_cores = 4;
  int memory_cores = 8;
  BitRate client_uplink = BitRate::Gbps(100);
  // Two-tier fabric: > 1 spreads the clients over this many per-group ToR
  // switches (contiguous blocks of ceil(clients/groups) clients each), every
  // group ToR trunked into the core switch. 1 keeps the flat single-switch
  // fan-in byte-identical to the historical wiring. Memory servers and the
  // spot host stay on the core either way.
  int client_groups = 1;
  BitRate trunk_rate = BitRate::Gbps(400);  // group ToR <-> core
  // Propagation delay of the ToR <-> core trunks; 0 keeps the fabric
  // profile's link_propagation. Hall-scale core runs are optical and an
  // order of magnitude longer than in-rack cabling, so raising this widens
  // the lookahead gap between the trunk edges and the client edges — the
  // per-edge horizons then let each group's neighborhood advance in
  // trunk-sized steps while the global-min policy stays pinned to the
  // shortest link in the whole fabric.
  Nanos trunk_propagation = 0;
  // Propagation delay of the client uplinks; 0 keeps the fabric profile's
  // link_propagation everywhere. In-rack client <-> ToR cabling is a few
  // meters of DAC (~5 ns/m), an order of magnitude shorter than the
  // rack-to-rack runs — the asymmetry the per-edge epoch horizons exploit,
  // since only the neighborhoods adjacent to a short link inherit its
  // tighter lookahead.
  Nanos client_propagation = 0;
  bool split = false;
  int split_workers = 0;
  // Split only: explicit per-node partition-group tags (one per topology
  // node, e.g. the output of net::PackDomains over a profiled rate vector).
  // Empty keeps the one-domain-per-node split.
  std::vector<int> pack_groups;
  // Congestion realism knobs. The defaults reproduce the uncontended
  // fabric byte-for-byte: unbounded-feeling queues, no marking, no PFC,
  // DCQCN off. An incast experiment shrinks the queue, turns marking or
  // PFC on, and enables DCQCN on every NIC.
  Bytes egress_queue_capacity = MiB(4);
  Bytes ecn_threshold = 0;
  bool pfc = false;
  rdma::DcqcnConfig dcqcn;
  // Go-Back-N timeout for every NIC. DCQCN experiments must raise this
  // above the worst congested RTT: pacing delays that cross the timeout
  // read as loss, and the resulting rewinds re-execute whole read windows
  // (a retransmission storm the rate control then amplifies).
  Nanos retransmit_timeout = Micros(100);
};

struct FanInTestbed {
  FanInConfig cfg;
  rdma::FabricParams fabric;
  rdma::NicConfig nic_config;
  sim::Simulation sim;  // client 0's event loop (domain 0 when split)
  net::Topology topo;
  net::Partition partition;
  net::FabricDomains domains;
  net::Switch sw;
  // Two-tier only (cfg.client_groups > 1): one leaf switch per client
  // group, each trunked into the core.
  std::vector<std::unique_ptr<net::Switch>> group_tors;
  std::vector<net::TrunkPorts> trunks;  // [g] ports: a=core side, b=leaf
  std::vector<std::unique_ptr<net::HostNic>> client_nics;
  std::vector<std::unique_ptr<SparseMemory>> client_mems;
  std::vector<std::unique_ptr<rdma::Device>> client_devs;
  std::vector<std::unique_ptr<sim::Machine>> client_machines;
  std::vector<std::unique_ptr<net::HostNic>> memory_nics;
  std::vector<std::unique_ptr<SparseMemory>> memory_mems;
  std::vector<std::unique_ptr<rdma::Device>> memory_devs;
  std::vector<std::unique_ptr<sim::Machine>> memory_machines;
  std::unique_ptr<net::HostNic> spot_nic;
  std::unique_ptr<SparseMemory> spot_mem;
  std::unique_ptr<rdma::Device> spot_dev;
  std::unique_ptr<sim::Machine> spot_machine;

  // Topology node ids: clients first (client 0 → domain 0), then the core
  // switch, the memory servers, and the spot host. Two-tier group ToRs are
  // appended after the legacy nodes so every id here is valid for any group
  // count.
  net::TopoNodeId client_node(int k) const { return k; }
  net::TopoNodeId switch_node() const { return cfg.clients; }
  net::TopoNodeId memory_node(int m) const { return cfg.clients + 1 + m; }
  net::TopoNodeId spot_node() const {
    return cfg.clients + 1 + cfg.memory_servers;
  }
  net::TopoNodeId group_tor_node(int g) const { return spot_node() + 1 + g; }
  static int GroupOfClient(const FanInConfig& cfg, int k) {
    if (cfg.client_groups <= 1) return 0;
    const int per_group =
        (cfg.clients + cfg.client_groups - 1) / cfg.client_groups;
    return k / per_group;
  }
  int group_of_client(int k) const { return GroupOfClient(cfg, k); }
  // The switch node a client's NIC attaches to: its group ToR when
  // two-tier, the core otherwise. This is where a client's uplink delivers,
  // i.e. the domain its uplink telemetry must bind against.
  net::TopoNodeId client_attach_node(int k) const {
    return cfg.client_groups > 1 ? group_tor_node(group_of_client(k))
                                 : switch_node();
  }
  // Fabric addresses (switch routing).
  net::NodeId client_id(int k) const {
    return static_cast<net::NodeId>(1 + k);
  }
  net::NodeId memory_id(int m) const {
    return static_cast<net::NodeId>(1 + cfg.clients + m);
  }
  net::NodeId spot_id() const {
    return static_cast<net::NodeId>(1 + cfg.clients + cfg.memory_servers);
  }

  static net::Switch::Config MakeSwitchConfig(
      const FanInConfig& cfg, const rdma::FabricParams& fabric) {
    net::Switch::Config sc;
    sc.pipeline_latency = fabric.switch_pipeline;
    sc.egress_queue_capacity = cfg.egress_queue_capacity;
    sc.ecn_threshold = cfg.ecn_threshold;
    sc.pfc_enabled = cfg.pfc;
    return sc;
  }

  static net::Topology BuildTopo(const FanInConfig& cfg, Nanos propagation) {
    net::Topology topo;
    for (int k = 0; k < cfg.clients; ++k) {
      topo.AddNode(net::TopoNodeKind::kComputeHost,
                   "client" + std::to_string(k),
                   static_cast<net::NodeId>(1 + k));
    }
    const net::TopoNodeId tor =
        topo.AddNode(net::TopoNodeKind::kSwitch, "tor");
    for (int m = 0; m < cfg.memory_servers; ++m) {
      topo.AddNode(net::TopoNodeKind::kMemoryServer,
                   "mem" + std::to_string(m),
                   static_cast<net::NodeId>(1 + cfg.clients + m));
    }
    const net::TopoNodeId spot = topo.AddNode(
        net::TopoNodeKind::kSpotHost, "spot",
        static_cast<net::NodeId>(1 + cfg.clients + cfg.memory_servers));
    // Two-tier group ToRs, appended after the legacy nodes so client /
    // switch / memory / spot node ids never move.
    const bool two_tier = cfg.client_groups > 1;
    if (two_tier) {
      for (int g = 0; g < cfg.client_groups; ++g) {
        topo.AddNode(net::TopoNodeKind::kSwitch, "gtor" + std::to_string(g));
      }
    }
    const int first_gtor = spot + 1;
    const Nanos client_prop =
        cfg.client_propagation > 0 ? cfg.client_propagation : propagation;
    for (int k = 0; k < cfg.clients; ++k) {
      topo.AddEdge(k, two_tier ? first_gtor + GroupOfClient(cfg, k) : tor,
                   client_prop);
    }
    for (int m = 0; m < cfg.memory_servers; ++m) {
      topo.AddEdge(cfg.clients + 1 + m, tor, propagation);
    }
    topo.AddEdge(spot, tor, propagation);
    if (two_tier) {
      const Nanos trunk_prop =
          cfg.trunk_propagation > 0 ? cfg.trunk_propagation : propagation;
      for (int g = 0; g < cfg.client_groups; ++g) {
        topo.AddEdge(first_gtor + g, tor, trunk_prop);
      }
    }
    if (!cfg.split) {
      topo.GroupAll(0);
    } else if (!cfg.pack_groups.empty()) {
      // A packed split: the caller ran net::PackDomains over this same
      // graph and hands back the per-node group tags.
      COWBIRD_CHECK(static_cast<int>(cfg.pack_groups.size()) ==
                    topo.node_count());
      for (net::TopoNodeId n = 0; n < topo.node_count(); ++n) {
        topo.SetGroup(n, cfg.pack_groups[static_cast<std::size_t>(n)]);
      }
    }
    // else: split with empty pack_groups → one domain per node.
    return topo;
  }

  explicit FanInTestbed(const FanInConfig& config)
      : cfg(config),
        topo(BuildTopo(cfg, fabric.link_propagation)),
        partition(net::PartitionTopology(topo)),
        domains(sim, partition, cfg.split_workers),
        sw(domains.sim_for(switch_node()), MakeSwitchConfig(cfg, fabric)) {
    int expected_domains = 1;
    if (cfg.split) {
      expected_domains = topo.node_count();
      if (!cfg.pack_groups.empty()) {
        expected_domains = 0;
        for (const int g : cfg.pack_groups) {
          expected_domains = std::max(expected_domains, g + 1);
        }
      }
    }
    COWBIRD_CHECK(partition.domain_count() == expected_domains);
    COWBIRD_CHECK(!partition.zero_lookahead_error());
    // Two-tier leaves: built (and trunked) before any host connects, so the
    // flat fabric's core port numbering — clients, memories, spot — is
    // reproduced on each switch that hosts attach to.
    if (cfg.client_groups > 1) {
      for (int g = 0; g < cfg.client_groups; ++g) {
        group_tors.push_back(std::make_unique<net::Switch>(
            domains.sim_for(group_tor_node(g)), MakeSwitchConfig(cfg, fabric)));
        trunks.push_back(net::ConnectTrunk(
            sw, *group_tors.back(), cfg.trunk_rate,
            cfg.trunk_propagation > 0 ? cfg.trunk_propagation
                                      : fabric.link_propagation,
            "tor", topo.node(group_tor_node(g)).name));
        // Leaf default-routes everything unknown (memories, spot, the
        // engine's switch address) up its trunk; the core routes each
        // client block down the matching trunk.
        group_tors.back()->SetDefaultRoute(trunks.back().b_port);
      }
      for (int k = 0; k < cfg.clients; ++k) {
        sw.SetRoute(client_id(k), trunks[static_cast<std::size_t>(
                                             group_of_client(k))].a_port);
      }
    }
    // Before any Device copies nic_config.
    nic_config.dcqcn = cfg.dcqcn;
    nic_config.retransmit_timeout = cfg.retransmit_timeout;
    const Nanos client_prop = cfg.client_propagation > 0
                                  ? cfg.client_propagation
                                  : fabric.link_propagation;
    for (int k = 0; k < cfg.clients; ++k) {
      sim::Simulation& csim = domains.sim_for(client_node(k));
      client_nics.push_back(std::make_unique<net::HostNic>(
          csim, client_id(k), cfg.client_uplink, client_prop));
      client_mems.push_back(std::make_unique<SparseMemory>());
      client_devs.push_back(std::make_unique<rdma::Device>(
          *client_nics.back(), *client_mems.back(), nic_config));
      client_machines.push_back(
          std::make_unique<sim::Machine>(csim, cfg.client_cores));
    }
    for (int m = 0; m < cfg.memory_servers; ++m) {
      sim::Simulation& msim = domains.sim_for(memory_node(m));
      memory_nics.push_back(std::make_unique<net::HostNic>(
          msim, memory_id(m), fabric.host_link, fabric.link_propagation));
      memory_mems.push_back(std::make_unique<SparseMemory>());
      memory_devs.push_back(std::make_unique<rdma::Device>(
          *memory_nics.back(), *memory_mems.back(), nic_config));
      memory_machines.push_back(
          std::make_unique<sim::Machine>(msim, cfg.memory_cores));
    }
    sim::Simulation& ssim = domains.sim_for(spot_node());
    spot_nic = std::make_unique<net::HostNic>(
        ssim, spot_id(), fabric.host_link, fabric.link_propagation);
    spot_mem = std::make_unique<SparseMemory>();
    spot_dev =
        std::make_unique<rdma::Device>(*spot_nic, *spot_mem, nic_config);
    spot_machine = std::make_unique<sim::Machine>(ssim, 1);

    for (int k = 0; k < cfg.clients; ++k) {
      client_nics[static_cast<std::size_t>(k)]->ConnectTo(
          client_switch(k), topo.node(client_node(k)).name,
          topo.node(client_attach_node(k)).name);
    }
    for (int m = 0; m < cfg.memory_servers; ++m) {
      memory_nics[static_cast<std::size_t>(m)]->ConnectTo(
          sw, topo.node(memory_node(m)).name, "tor");
    }
    spot_nic->ConnectTo(sw, "spot", "tor");
  }

  // The switch a client's NIC attaches to (its group ToR when two-tier).
  net::Switch& client_switch(int k) {
    return cfg.client_groups > 1
               ? *group_tors[static_cast<std::size_t>(group_of_client(k))]
               : sw;
  }

  // Fabric-wide drop count (core plus any group ToRs).
  std::uint64_t switch_drops() const {
    std::uint64_t total = sw.total_drops();
    for (const auto& leaf : group_tors) total += leaf->total_drops();
    return total;
  }

  bool split() const { return domains.group() != nullptr; }
  sim::DomainGroup* group() { return domains.group(); }

  void Run() { domains.Run(); }
  void RunFor(Nanos duration) { domains.RunFor(duration); }
  std::uint64_t EventsProcessed() const { return domains.EventsProcessed(); }
};

}  // namespace cowbird::workload
