// The evaluation testbed (Section 7) as a reusable object: one switch,
// a compute node (16 logical cores, as Xeon Silver 4110 with HT), a memory
// pool node, a spot node (1 core granted to the Cowbird-Spot agent), and a
// bystander node for contending traffic (Figure 14). All links 100 Gbps
// except the bystander's 25 Gbps NIC, matching the paper's setup.
//
// With `split_domains` the testbed becomes a two-domain sim::DomainGroup cut
// at the compute NIC's attachment: the compute node keeps `sim`, while the
// switch and the memory/spot/bystander hosts move to a second event loop
// (`esim`). The cut links' propagation delay is the conservative lookahead.
// In the default serial mode `esim` aliases `sim` and every construction and
// schedule happens exactly as before — the chaos parity goldens pin this.
#pragma once

#include <cstdint>
#include <memory>

#include "common/sparse_memory.h"
#include "net/switch.h"
#include "rdma/device.h"
#include "rdma/params.h"
#include "sim/parallel.h"
#include "sim/simulation.h"
#include "sim/thread.h"

namespace cowbird::workload {

struct Testbed {
  static constexpr net::NodeId kComputeId = 1;
  static constexpr net::NodeId kMemoryId = 2;
  static constexpr net::NodeId kSpotId = 3;
  static constexpr net::NodeId kBystanderId = 4;

  sim::Simulation sim;  // compute-node domain (domain 0 when split)
  // Engine-side event loop: a real second Simulation when split, otherwise
  // a reference back to `sim` so serial wiring is byte-identical.
  std::unique_ptr<sim::Simulation> engine_sim_store;
  sim::Simulation& esim;
  std::unique_ptr<sim::DomainGroup> group;
  rdma::FabricParams fabric;
  rdma::NicConfig nic_config;
  net::Switch sw;
  net::HostNic compute_nic;
  net::HostNic memory_nic;
  net::HostNic spot_nic;
  net::HostNic bystander_nic;
  SparseMemory compute_mem;
  SparseMemory memory_mem;
  SparseMemory spot_mem;
  rdma::Device compute_dev;
  rdma::Device memory_dev;
  rdma::Device spot_dev;
  sim::Machine compute_machine;
  sim::Machine memory_machine;
  sim::Machine spot_machine;

  explicit Testbed(int compute_cores = 16,
                   BitRate compute_uplink = BitRate::Gbps(100),
                   bool split_domains = false, int split_workers = 0)
      : engine_sim_store(split_domains ? std::make_unique<sim::Simulation>()
                                       : nullptr),
        esim(engine_sim_store ? *engine_sim_store : sim),
        group(split_domains
                  ? std::make_unique<sim::DomainGroup>(split_workers)
                  : nullptr),
        sw(esim,
           net::Switch::Config{.pipeline_latency = fabric.switch_pipeline}),
        compute_nic(sim, kComputeId, compute_uplink,
                    fabric.link_propagation),
        memory_nic(esim, kMemoryId, fabric.host_link,
                   fabric.link_propagation),
        spot_nic(esim, kSpotId, fabric.host_link, fabric.link_propagation),
        bystander_nic(esim, kBystanderId, BitRate::Gbps(25),
                      fabric.link_propagation),
        compute_dev(compute_nic, compute_mem, nic_config),
        memory_dev(memory_nic, memory_mem, nic_config),
        spot_dev(spot_nic, spot_mem, nic_config),
        compute_machine(sim, compute_cores),
        memory_machine(esim, 8),
        spot_machine(esim, 1) {
    // Domain registration must precede ConnectTo: SetDestination inspects
    // domain ids to recognize the cut and advertise lookahead.
    if (group) {
      group->AddDomain(sim);
      group->AddDomain(esim);
    }
    compute_nic.ConnectTo(sw);
    memory_nic.ConnectTo(sw);
    spot_nic.ConnectTo(sw);
    bystander_nic.ConnectTo(sw);
  }

  bool split() const { return group != nullptr; }

  // Run the whole testbed — the group when split, the single loop otherwise.
  void Run() {
    if (group) {
      group->Run();
    } else {
      sim.Run();
    }
  }
  void RunFor(Nanos duration) {
    if (group) {
      group->RunFor(duration);
    } else {
      sim.RunFor(duration);
    }
  }
  std::uint64_t EventsProcessed() const {
    return group ? group->EventsProcessed() : sim.EventsProcessed();
  }
};

}  // namespace cowbird::workload
