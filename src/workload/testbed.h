// The evaluation testbed (Section 7) as a reusable object: one switch,
// a compute node (16 logical cores, as Xeon Silver 4110 with HT), a memory
// pool node, a spot node (1 core granted to the Cowbird-Spot agent), and a
// bystander node for contending traffic (Figure 14). All links 100 Gbps
// except the bystander's 25 Gbps NIC, matching the paper's setup.
#pragma once

#include "common/sparse_memory.h"
#include "net/switch.h"
#include "rdma/device.h"
#include "rdma/params.h"
#include "sim/simulation.h"
#include "sim/thread.h"

namespace cowbird::workload {

struct Testbed {
  static constexpr net::NodeId kComputeId = 1;
  static constexpr net::NodeId kMemoryId = 2;
  static constexpr net::NodeId kSpotId = 3;
  static constexpr net::NodeId kBystanderId = 4;

  sim::Simulation sim;
  rdma::FabricParams fabric;
  rdma::NicConfig nic_config;
  net::Switch sw;
  net::HostNic compute_nic;
  net::HostNic memory_nic;
  net::HostNic spot_nic;
  net::HostNic bystander_nic;
  SparseMemory compute_mem;
  SparseMemory memory_mem;
  SparseMemory spot_mem;
  rdma::Device compute_dev;
  rdma::Device memory_dev;
  rdma::Device spot_dev;
  sim::Machine compute_machine;
  sim::Machine memory_machine;
  sim::Machine spot_machine;

  explicit Testbed(int compute_cores = 16,
                   BitRate compute_uplink = BitRate::Gbps(100))
      : sw(sim,
           net::Switch::Config{.pipeline_latency = fabric.switch_pipeline}),
        compute_nic(sim, kComputeId, compute_uplink,
                    fabric.link_propagation),
        memory_nic(sim, kMemoryId, fabric.host_link, fabric.link_propagation),
        spot_nic(sim, kSpotId, fabric.host_link, fabric.link_propagation),
        bystander_nic(sim, kBystanderId, BitRate::Gbps(25),
                      fabric.link_propagation),
        compute_dev(compute_nic, compute_mem, nic_config),
        memory_dev(memory_nic, memory_mem, nic_config),
        spot_dev(spot_nic, spot_mem, nic_config),
        compute_machine(sim, compute_cores),
        memory_machine(sim, 8),
        spot_machine(sim, 1) {
    compute_nic.ConnectTo(sw);
    memory_nic.ConnectTo(sw);
    spot_nic.ConnectTo(sw);
    bystander_nic.ConnectTo(sw);
  }
};

}  // namespace cowbird::workload
