// Datapath parity pin: the canonical 8-seed chaos sweep (both engines) must
// produce byte-identical checked histories and fault counters across
// allocator-path changes.
//
// The pooled/allocation-free datapath work is only legal because it does not
// perturb simulated behavior: pool slot addresses, recycled packet buffers,
// and flat-map lookups must leave every event ordering — and therefore every
// CheckHistory outcome and injector counter — exactly as the heap-allocating
// code produced them. This test pins that claim to a committed golden file:
// each (engine, seed) run is reduced to one line carrying an FNV-1a digest
// of the full serialized trace (options, violations, complete operation
// history) plus the run's externally visible counters.
//
// Regenerating the golden is an explicit act, for behavior changes that are
// *meant* to alter outcomes (protocol fixes, workload changes):
//
//   COWBIRD_UPDATE_CHAOS_GOLDEN=1 ./tests/chaos_parity_test
//
// and the diff of tests/goldens/chaos_parity.golden should be reviewed like
// code: an unexpected digest change means the "optimization" changed what
// the simulation does.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/history.h"
#include "chaos/runner.h"
#include "chaos/trace.h"
#include "gtest/gtest.h"

namespace cowbird::chaos {
namespace {

constexpr std::uint64_t kSweepSeeds = 8;

std::string GoldenPath() {
  return std::string(COWBIRD_SOURCE_DIR) + "/tests/goldens/chaos_parity.golden";
}

// One line per run: every field a behavior change could move. The trace
// digest covers the complete operation history byte-for-byte (ids, invoke /
// complete times in virtual nanoseconds, payload digests) via the same
// serialization the replay tooling trusts.
std::string RunLine(EngineKind engine, std::uint64_t seed) {
  const ChaosOptions opt = SweepOptions(engine, seed);
  const ChaosResult result = RunChaos(opt);
  const std::string trace = SerializeTrace(MakeTrace(opt, result));
  const std::uint64_t digest = HistoryRecorder::Digest(std::span(
      reinterpret_cast<const std::uint8_t*>(trace.data()), trace.size()));
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "engine=%s seed=%llu trace_fnv=%016llx violations=%zu reads=%llu "
      "writes=%llu faults=%llu drop=%llu dup=%llu reorder=%llu delay=%llu "
      "crashes=%llu counters_exact=%d",
      EngineKindName(engine), static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(digest), result.violations.size(),
      static_cast<unsigned long long>(result.reads_checked),
      static_cast<unsigned long long>(result.writes_completed),
      static_cast<unsigned long long>(result.faults_injected),
      static_cast<unsigned long long>(result.decided_dropped),
      static_cast<unsigned long long>(result.decided_duplicated),
      static_cast<unsigned long long>(result.decided_reordered),
      static_cast<unsigned long long>(result.decided_delayed),
      static_cast<unsigned long long>(result.crashes_executed),
      result.counters_exact ? 1 : 0);
  return buf;
}

std::vector<std::string> SweepLines() {
  std::vector<std::string> lines;
  for (const EngineKind engine : {EngineKind::kSpot, EngineKind::kP4}) {
    for (std::uint64_t seed = 1; seed <= kSweepSeeds; ++seed) {
      lines.push_back(RunLine(engine, seed));
    }
  }
  return lines;
}

TEST(ChaosParity, EightSeedSweepMatchesGolden) {
  const std::vector<std::string> lines = SweepLines();

  if (std::getenv("COWBIRD_UPDATE_CHAOS_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    for (const std::string& line : lines) out << line << "\n";
    GTEST_SKIP() << "golden regenerated at " << GoldenPath();
  }

  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.good())
      << "missing golden " << GoldenPath()
      << " — generate with COWBIRD_UPDATE_CHAOS_GOLDEN=1";
  std::vector<std::string> golden;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) golden.push_back(line);
  }

  ASSERT_EQ(lines.size(), golden.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i], golden[i])
        << "chaos outcome diverged from the pre-change pin (run " << i
        << "); the datapath change altered simulated behavior";
  }
}

}  // namespace
}  // namespace cowbird::chaos
