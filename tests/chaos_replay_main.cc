// Failure-trace replay driver: re-executes traces captured by chaos runs
// (chaos_sweep or the gtest harness) and verifies each rerun reproduces the
// identical checker violations.
//
//   chaos_replay [--jobs N] <trace-file>...
//
// Multiple traces replay concurrently (--jobs, default hardware
// concurrency); output is buffered per file and printed in argument order,
// so a batch invocation's output is byte-identical for any jobs value.
// Replay always runs the serial (golden-pinned) execution mode.
//
// Exit 0: deterministic reproduction of every trace. Exit 1: some replay
// diverged (a determinism bug in the simulator — itself a finding). Exit 2:
// bad usage or an unparseable trace. A batch exits with the worst per-file
// code.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "chaos/trace.h"
#include "sim/parallel.h"

int main(int argc, char** argv) {
  using namespace cowbird::chaos;
  int jobs = 0;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--jobs") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: chaos_replay [--jobs N] <trace-file>...\n");
        return 2;
      }
      jobs = std::atoi(argv[++i]);
    } else {
      files.push_back(flag);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: chaos_replay [--jobs N] <trace-file>...\n");
    return 2;
  }

  struct FileOutcome {
    std::string text;
    int code = 0;
  };
  std::vector<FileOutcome> outcomes(files.size());
  cowbird::sim::ParallelFor(
      jobs > 0 ? jobs : cowbird::sim::HardwareJobs(),
      static_cast<int>(files.size()), [&](int i) {
        const auto index = static_cast<std::size_t>(i);
        FileOutcome& out = outcomes[index];
        const auto trace = ReadTraceFile(files[index]);
        if (!trace.has_value()) {
          out.text =
              "chaos_replay: cannot parse " + files[index] + "\n";
          out.code = 2;
          return;
        }
        char head[256];
        std::snprintf(head, sizeof(head),
                      "replaying engine=%s seed=%llu break_fence=%d (%zu "
                      "recorded violations)\n",
                      EngineKindName(trace->options.engine),
                      static_cast<unsigned long long>(trace->options.seed),
                      trace->options.break_fence ? 1 : 0,
                      trace->violations.size());
        out.text += head;
        const ReplayOutcome outcome = ReplayTrace(*trace);
        if (!outcome.deterministic) {
          out.text += "REPLAY DIVERGED\n" + outcome.mismatch + "\n";
          out.code = 1;
          return;
        }
        char tail[128];
        std::snprintf(tail, sizeof(tail),
                      "deterministic: %zu violations reproduced\n",
                      outcome.result.violations.size());
        out.text += tail;
        for (const Violation& v : outcome.result.violations) {
          out.text += "  " + v.Format() + "\n";
        }
      });

  int worst = 0;
  for (const FileOutcome& out : outcomes) {
    std::fputs(out.text.c_str(), stdout);
    worst = std::max(worst, out.code);
  }
  return worst;
}
