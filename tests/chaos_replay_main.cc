// Failure-trace replay driver: re-executes a trace captured by a chaos run
// (chaos_sweep or the gtest harness) and verifies the rerun reproduces the
// identical checker violations.
//
//   chaos_replay <trace-file>
//
// Exit 0: deterministic reproduction. Exit 1: the replay diverged (a
// determinism bug in the simulator — itself a finding). Exit 2: bad usage
// or unparseable trace.
#include <cstdio>
#include <string>

#include "chaos/trace.h"

int main(int argc, char** argv) {
  using namespace cowbird::chaos;
  if (argc != 2) {
    std::fprintf(stderr, "usage: chaos_replay <trace-file>\n");
    return 2;
  }
  const auto trace = ReadTraceFile(argv[1]);
  if (!trace.has_value()) {
    std::fprintf(stderr, "chaos_replay: cannot parse %s\n", argv[1]);
    return 2;
  }
  std::printf("replaying engine=%s seed=%llu break_fence=%d (%zu recorded "
              "violations)\n",
              EngineKindName(trace->options.engine),
              static_cast<unsigned long long>(trace->options.seed),
              trace->options.break_fence ? 1 : 0,
              trace->violations.size());
  const ReplayOutcome outcome = ReplayTrace(*trace);
  if (!outcome.deterministic) {
    std::printf("REPLAY DIVERGED\n%s\n", outcome.mismatch.c_str());
    return 1;
  }
  std::printf("deterministic: %zu violations reproduced\n",
              outcome.result.violations.size());
  for (const Violation& v : outcome.result.violations) {
    std::printf("  %s\n", v.Format().c_str());
  }
  return 0;
}
