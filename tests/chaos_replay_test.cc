// Failure-trace capture and replay: a violating run dumps a trace that
// re-executes deterministically to the identical violations — the repro
// workflow behind "re-run the seed the CI sweep printed".
#include <gtest/gtest.h>

#include <string>

#include "chaos/runner.h"
#include "chaos/trace.h"
#include "test_seed.h"

namespace cowbird::chaos {
namespace {

using cowbird::testing::TestSeed;

// A broken-fence run that provably violates (searched over a few seeds so
// one bad default doesn't starve the test of a failure to capture).
ChaosOptions ViolatingOptions(std::uint64_t base_seed) {
  for (std::uint64_t seed = base_seed; seed < base_seed + 5; ++seed) {
    ChaosOptions opt;
    opt.engine = EngineKind::kSpot;
    opt.seed = seed;
    opt.break_fence = true;
    opt.workload.threads = 2;
    opt.workload.slots_per_thread = 1;
    opt.workload.write_ratio = 0.5;
    opt.workload.ops_per_thread = 150;
    if (!RunChaos(opt).violations.empty()) return opt;
  }
  ADD_FAILURE() << "no violating seed found in [" << base_seed << ", "
                << base_seed + 5 << ")";
  return ChaosOptions{};
}

TEST(ChaosTraceTest, SerializeParseRoundTrips) {
  const std::uint64_t seed = TestSeed(3);
  COWBIRD_SCOPED_SEED(seed);
  ChaosOptions opt;
  opt.engine = EngineKind::kP4;
  opt.seed = seed;
  opt.workload.ops_per_thread = 60;
  opt.plan = FaultPlan::FromSeed(seed, 1);
  const ChaosResult result = RunChaos(opt);
  const ChaosTrace trace = MakeTrace(opt, result);

  const auto parsed = ParseTrace(SerializeTrace(trace));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->options.engine, opt.engine);
  EXPECT_EQ(parsed->options.seed, opt.seed);
  EXPECT_EQ(parsed->options.break_fence, opt.break_fence);
  EXPECT_EQ(parsed->options.workload.Serialize(), opt.workload.Serialize());
  EXPECT_EQ(parsed->options.plan.Serialize(), opt.plan.Serialize());
  EXPECT_EQ(parsed->violations, trace.violations);
  ASSERT_EQ(parsed->history.size(), trace.history.size());
  for (std::size_t i = 0; i < trace.history.size(); ++i) {
    EXPECT_EQ(parsed->history[i].digest, trace.history[i].digest);
    EXPECT_EQ(parsed->history[i].invoke, trace.history[i].invoke);
    EXPECT_EQ(parsed->history[i].complete, trace.history[i].complete);
    EXPECT_EQ(parsed->history[i].is_write, trace.history[i].is_write);
  }
}

TEST(ChaosTraceTest, CapturedViolationReplaysDeterministically) {
  const std::uint64_t seed = TestSeed(5);
  COWBIRD_SCOPED_SEED(seed);
  const ChaosOptions opt = ViolatingOptions(seed);
  const ChaosResult original = RunChaos(opt);
  ASSERT_FALSE(original.violations.empty());
  const ChaosTrace trace = MakeTrace(opt, original);

  // Through the file format, exactly as the chaos_replay driver does.
  const std::string path =
      ::testing::TempDir() + "/cowbird-chaos-trace-test.txt";
  ASSERT_TRUE(WriteTraceFile(path, trace));
  const auto loaded = ReadTraceFile(path);
  ASSERT_TRUE(loaded.has_value());

  const ReplayOutcome outcome = ReplayTrace(*loaded);
  EXPECT_TRUE(outcome.deterministic) << outcome.mismatch;
  EXPECT_EQ(outcome.result.violations.size(), original.violations.size());
}

TEST(ChaosTraceTest, CleanRunReplaysClean) {
  const std::uint64_t seed = TestSeed(7);
  COWBIRD_SCOPED_SEED(seed);
  ChaosOptions opt;
  opt.engine = EngineKind::kSpot;
  opt.seed = seed;
  opt.workload.ops_per_thread = 80;
  opt.plan = FaultPlan::FromSeed(seed, 0);
  const ChaosResult result = RunChaos(opt);
  ASSERT_TRUE(result.violations.empty());
  const ReplayOutcome outcome = ReplayTrace(MakeTrace(opt, result));
  EXPECT_TRUE(outcome.deterministic) << outcome.mismatch;
  EXPECT_TRUE(outcome.result.violations.empty());
}

}  // namespace
}  // namespace cowbird::chaos
