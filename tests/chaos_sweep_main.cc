// Chaos seed-sweep driver (the CI job behind "reproducing a failure from a
// seed" in the README).
//
//   chaos_sweep [--engine spot|p4|both] [--seeds N] [--start S]
//               [--trace-dir DIR] [--break-fence]
//
// Normal mode: runs N seeds per engine, each with a seed-derived mixed
// fault plan (drop + duplicate + reorder + delay, partitions, engine
// crashes on odd seeds). Any checker violation dumps a replayable failure
// trace into --trace-dir and the sweep exits non-zero.
//
// --break-fence mode is the harness's own canary: it re-runs the sweep with
// the engines' read-after-write fence disabled and exits zero only if the
// checker *caught* the planted bug on at least one seed AND the captured
// trace replays deterministically to the same violations.
//
// COWBIRD_TEST_SEED=<seed> overrides --start with a single-seed run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/runner.h"
#include "chaos/trace.h"

namespace {

using namespace cowbird::chaos;

struct SweepArgs {
  std::vector<EngineKind> engines = {EngineKind::kSpot, EngineKind::kP4};
  std::uint64_t seeds = 8;
  std::uint64_t start = 1;
  std::string trace_dir = ".";
  bool break_fence = false;
};

std::string DumpTrace(const SweepArgs& args, const ChaosOptions& opt,
                      const ChaosResult& result) {
  const std::string path = args.trace_dir + "/chaos-trace-" +
                           EngineKindName(opt.engine) + "-seed" +
                           std::to_string(opt.seed) + ".txt";
  if (!WriteTraceFile(path, MakeTrace(opt, result))) {
    std::fprintf(stderr, "chaos_sweep: cannot write trace %s\n",
                 path.c_str());
    return {};
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  SweepArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--engine") {
      const char* value = next();
      if (value == nullptr) return 2;
      if (std::strcmp(value, "both") == 0) {
        args.engines = {EngineKind::kSpot, EngineKind::kP4};
      } else if (const auto kind = ParseEngineKind(value)) {
        args.engines = {*kind};
      } else {
        std::fprintf(stderr, "chaos_sweep: unknown engine %s\n", value);
        return 2;
      }
    } else if (flag == "--seeds") {
      const char* value = next();
      if (value == nullptr) return 2;
      args.seeds = std::strtoull(value, nullptr, 10);
    } else if (flag == "--start") {
      const char* value = next();
      if (value == nullptr) return 2;
      args.start = std::strtoull(value, nullptr, 10);
    } else if (flag == "--trace-dir") {
      const char* value = next();
      if (value == nullptr) return 2;
      args.trace_dir = value;
    } else if (flag == "--break-fence") {
      args.break_fence = true;
    } else {
      std::fprintf(stderr, "chaos_sweep: unknown flag %s\n", flag.c_str());
      return 2;
    }
  }
  if (const char* env = std::getenv("COWBIRD_TEST_SEED")) {
    args.start = std::strtoull(env, nullptr, 10);
    args.seeds = 1;
    std::printf("COWBIRD_TEST_SEED=%llu: single-seed run\n",
                static_cast<unsigned long long>(args.start));
  }

  std::uint64_t runs = 0, failures = 0, caught = 0;
  bool replay_ok = true;
  for (const EngineKind engine : args.engines) {
    for (std::uint64_t seed = args.start; seed < args.start + args.seeds;
         ++seed) {
      const ChaosOptions opt = SweepOptions(engine, seed, args.break_fence);
      const ChaosResult result = RunChaos(opt);
      ++runs;
      if (!result.counters_exact) {
        std::printf("FAIL engine=%s seed=%llu: fault counters inexact\n",
                    EngineKindName(engine),
                    static_cast<unsigned long long>(seed));
        ++failures;
      }
      if (args.break_fence) {
        if (result.violations.empty()) continue;
        ++caught;
        if (caught == 1) {
          // Prove the capture→replay loop on the first caught violation.
          const std::string path = DumpTrace(args, opt, result);
          const auto loaded = path.empty()
                                  ? std::nullopt
                                  : ReadTraceFile(path);
          if (!loaded.has_value()) {
            replay_ok = false;
          } else {
            const ReplayOutcome outcome = ReplayTrace(*loaded);
            replay_ok = outcome.deterministic;
            std::printf("caught engine=%s seed=%llu (%zu violations), "
                        "replay %s: %s\n",
                        EngineKindName(engine),
                        static_cast<unsigned long long>(seed),
                        result.violations.size(),
                        outcome.deterministic ? "deterministic"
                                              : "MISMATCH",
                        path.c_str());
            if (!outcome.deterministic) {
              std::printf("%s\n", outcome.mismatch.c_str());
            }
          }
        }
        continue;
      }
      if (!result.violations.empty()) {
        ++failures;
        const std::string path = DumpTrace(args, opt, result);
        std::printf(
            "FAIL engine=%s seed=%llu: %zu violations (reads=%llu "
            "crashes=%llu)\n  repro: COWBIRD_TEST_SEED=%llu or "
            "chaos_replay %s\n",
            EngineKindName(engine), static_cast<unsigned long long>(seed),
            result.violations.size(),
            static_cast<unsigned long long>(result.reads_checked),
            static_cast<unsigned long long>(result.crashes_executed),
            static_cast<unsigned long long>(seed), path.c_str());
        for (const Violation& v : result.violations) {
          std::printf("    %s\n", v.Format().c_str());
        }
      }
    }
  }

  if (args.break_fence) {
    std::printf("chaos_sweep --break-fence: %llu/%llu seeds caught the "
                "planted bug, replay %s\n",
                static_cast<unsigned long long>(caught),
                static_cast<unsigned long long>(runs),
                replay_ok ? "ok" : "FAILED");
    return (caught > 0 && replay_ok && failures == 0) ? 0 : 1;
  }
  std::printf("chaos_sweep: %llu runs, %llu failures\n",
              static_cast<unsigned long long>(runs),
              static_cast<unsigned long long>(failures));
  return failures == 0 ? 0 : 1;
}
