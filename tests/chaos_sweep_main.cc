// Chaos seed-sweep driver (the CI job behind "reproducing a failure from a
// seed" in the README).
//
//   chaos_sweep [--engine spot|p4|both] [--seeds N] [--start S]
//               [--trace-dir DIR] [--break-fence] [--jobs N]
//               [--split] [--split-workers N] [--split-scope pair|node|packed]
//               [--congestion none|incast|victim|pause_storm]
//               [--migration]
//
// Normal mode: runs N seeds per engine, each with a seed-derived mixed
// fault plan (drop + duplicate + reorder + delay, partitions, engine
// crashes on odd seeds). Any checker violation dumps a replayable failure
// trace into --trace-dir and the sweep exits non-zero.
//
// --jobs runs that many simulations concurrently (default: hardware
// concurrency). The report is byte-identical for any jobs value. --split
// executes each run domain-split (the parallel intra-sim datapath) instead
// of the golden-pinned serial loop; --split-scope node partitions one PDES
// domain per topology node instead of the default two-way cut, and
// --split-scope packed runs the per-node domains through net::PackDomains
// (budget 2, static kind-weight rates). Every scope yields the same report
// bytes — the partition never leaks into outcomes.
//
// --congestion layers a shared-fabric congestion scenario onto every
// seed's fault plan (finite switch queues, ECN+DCQCN, or a PFC pause
// storm); the default leaves the plans — and the report bytes — exactly
// as a pre-congestion sweep produced them.
//
// --migration layers the live region migration onto every seed: a second
// memory server joins the testbed and the region's hot range is copied
// and cut over mid-run (DESIGN.md §14). A seed whose migration never
// completes its cutover is a failure.
//
// --break-fence mode is the harness's own canary: it re-runs the sweep with
// the engines' read-after-write fence disabled and exits zero only if the
// checker *caught* the planted bug on at least one seed AND the captured
// trace replays deterministically to the same violations.
//
// COWBIRD_TEST_SEED=<seed> overrides --start with a single-seed run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "chaos/runner.h"
#include "chaos/sweep.h"

int main(int argc, char** argv) {
  using namespace cowbird::chaos;
  SweepConfig config;
  cowbird::bench::ParallelFlags parallel(/*with_split=*/true);
  for (int i = 1; i < argc; ++i) {
    if (parallel.Consume(argc, argv, i)) {
      if (!parallel.ok()) return 2;
      continue;
    }
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--engine") {
      const char* value = next();
      if (value == nullptr) return 2;
      if (std::strcmp(value, "both") == 0) {
        config.engines = {EngineKind::kSpot, EngineKind::kP4};
      } else if (const auto kind = ParseEngineKind(value)) {
        config.engines = {*kind};
      } else {
        std::fprintf(stderr, "chaos_sweep: unknown engine %s\n", value);
        return 2;
      }
    } else if (flag == "--seeds") {
      const char* value = next();
      if (value == nullptr) return 2;
      config.seeds = std::strtoull(value, nullptr, 10);
    } else if (flag == "--start") {
      const char* value = next();
      if (value == nullptr) return 2;
      config.start = std::strtoull(value, nullptr, 10);
    } else if (flag == "--trace-dir") {
      const char* value = next();
      if (value == nullptr) return 2;
      config.trace_dir = value;
    } else if (flag == "--break-fence") {
      config.break_fence = true;
    } else if (flag == "--migration") {
      config.migrate = true;
    } else if (flag == "--congestion") {
      const char* value = next();
      if (value == nullptr) return 2;
      if (const auto scenario = ParseCongestionScenario(value)) {
        config.congestion = *scenario;
      } else {
        std::fprintf(stderr, "chaos_sweep: unknown congestion scenario %s\n",
                     value);
        return 2;
      }
    } else {
      std::fprintf(stderr, "chaos_sweep: unknown flag %s\n", flag.c_str());
      return 2;
    }
  }
  config.jobs = parallel.jobs;
  config.split = parallel.split;
  config.split_workers = parallel.split_workers;
  config.split_scope = parallel.packed_scope()    ? SplitScope::kPacked
                       : parallel.per_node_scope() ? SplitScope::kPerNode
                                                   : SplitScope::kPair;
  if (const char* env = std::getenv("COWBIRD_TEST_SEED")) {
    config.start = std::strtoull(env, nullptr, 10);
    config.seeds = 1;
    std::printf("COWBIRD_TEST_SEED=%llu: single-seed run\n",
                static_cast<unsigned long long>(config.start));
  }

  const SweepOutcome outcome = RunSweep(config);
  std::fputs(outcome.report.c_str(), stdout);
  return outcome.ok ? 0 : 1;
}
