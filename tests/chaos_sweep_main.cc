// Chaos seed-sweep driver (the CI job behind "reproducing a failure from a
// seed" in the README).
//
//   chaos_sweep [--engine spot|p4|both] [--seeds N] [--start S]
//               [--trace-dir DIR] [--break-fence] [--jobs N]
//               [--split] [--split-workers N]
//
// Normal mode: runs N seeds per engine, each with a seed-derived mixed
// fault plan (drop + duplicate + reorder + delay, partitions, engine
// crashes on odd seeds). Any checker violation dumps a replayable failure
// trace into --trace-dir and the sweep exits non-zero.
//
// --jobs runs that many simulations concurrently (default: hardware
// concurrency). The report is byte-identical for any jobs value. --split
// executes each run domain-split (the parallel intra-sim datapath) instead
// of the golden-pinned serial loop.
//
// --break-fence mode is the harness's own canary: it re-runs the sweep with
// the engines' read-after-write fence disabled and exits zero only if the
// checker *caught* the planted bug on at least one seed AND the captured
// trace replays deterministically to the same violations.
//
// COWBIRD_TEST_SEED=<seed> overrides --start with a single-seed run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/runner.h"
#include "chaos/sweep.h"

int main(int argc, char** argv) {
  using namespace cowbird::chaos;
  SweepConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--engine") {
      const char* value = next();
      if (value == nullptr) return 2;
      if (std::strcmp(value, "both") == 0) {
        config.engines = {EngineKind::kSpot, EngineKind::kP4};
      } else if (const auto kind = ParseEngineKind(value)) {
        config.engines = {*kind};
      } else {
        std::fprintf(stderr, "chaos_sweep: unknown engine %s\n", value);
        return 2;
      }
    } else if (flag == "--seeds") {
      const char* value = next();
      if (value == nullptr) return 2;
      config.seeds = std::strtoull(value, nullptr, 10);
    } else if (flag == "--start") {
      const char* value = next();
      if (value == nullptr) return 2;
      config.start = std::strtoull(value, nullptr, 10);
    } else if (flag == "--trace-dir") {
      const char* value = next();
      if (value == nullptr) return 2;
      config.trace_dir = value;
    } else if (flag == "--break-fence") {
      config.break_fence = true;
    } else if (flag == "--jobs") {
      const char* value = next();
      if (value == nullptr) return 2;
      config.jobs = std::atoi(value);
    } else if (flag == "--split") {
      config.split = true;
    } else if (flag == "--split-workers") {
      const char* value = next();
      if (value == nullptr) return 2;
      config.split_workers = std::atoi(value);
    } else {
      std::fprintf(stderr, "chaos_sweep: unknown flag %s\n", flag.c_str());
      return 2;
    }
  }
  if (const char* env = std::getenv("COWBIRD_TEST_SEED")) {
    config.start = std::strtoull(env, nullptr, 10);
    config.seeds = 1;
    std::printf("COWBIRD_TEST_SEED=%llu: single-seed run\n",
                static_cast<unsigned long long>(config.start));
  }

  const SweepOutcome outcome = RunSweep(config);
  std::fputs(outcome.report.c_str(), stdout);
  return outcome.ok ? 0 : 1;
}
