// The chaos harness end to end: seeded fault plans, exact injection
// accounting, history-based linearizability checking across both engines,
// engine-crash migration, and the deliberately-broken-fence canary that
// proves the checker can catch a real consistency bug.
#include <gtest/gtest.h>

#include <string>

#include "chaos/fault_plan.h"
#include "chaos/history.h"
#include "chaos/runner.h"
#include "test_seed.h"

namespace cowbird::chaos {
namespace {

using cowbird::testing::TestSeed;

std::string Report(const ChaosResult& result) {
  std::string out;
  for (const Violation& v : result.violations) {
    out += v.Format();
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Checker unit tests (pure history, no simulation).
// ---------------------------------------------------------------------------

TEST(HistoryCheckerTest, CleanHistoryLinearizes) {
  HistoryRecorder rec;
  std::vector<std::uint8_t> v1(32, 1), v2(32, 2);
  const auto w1 = rec.OnInvoke(0, true, 1, 0, 32, 10,
                               HistoryRecorder::Digest(v1));
  rec.OnComplete(w1, 20);
  const auto r1 = rec.OnInvoke(0, false, 1, 0, 32, 30);
  rec.OnComplete(r1, 40, HistoryRecorder::Digest(v1));
  const auto w2 = rec.OnInvoke(1, true, 1, 0, 32, 50,
                               HistoryRecorder::Digest(v2));
  rec.OnComplete(w2, 60);
  const auto r2 = rec.OnInvoke(1, false, 1, 0, 32, 70);
  rec.OnComplete(r2, 80, HistoryRecorder::Digest(v2));
  EXPECT_TRUE(CheckHistory(rec.ops()).empty());
}

TEST(HistoryCheckerTest, ReadBeforeAnyWriteSeesZeroes) {
  HistoryRecorder rec;
  const std::vector<std::uint8_t> zeros(64, 0);
  const auto r = rec.OnInvoke(0, false, 1, 4096, 64, 5);
  rec.OnComplete(r, 9, HistoryRecorder::Digest(zeros));
  EXPECT_TRUE(CheckHistory(rec.ops()).empty());
}

TEST(HistoryCheckerTest, StaleReadAfterSameThreadWriteIsFlagged) {
  HistoryRecorder rec;
  std::vector<std::uint8_t> v1(32, 1);
  const std::vector<std::uint8_t> zeros(32, 0);
  const auto w = rec.OnInvoke(0, true, 1, 0, 32, 10,
                              HistoryRecorder::Digest(v1));
  // Read invoked after the write on the same thread must see v1, but
  // observes the pre-write zero state.
  const auto r = rec.OnInvoke(0, false, 1, 0, 32, 15);
  rec.OnComplete(r, 25, HistoryRecorder::Digest(zeros));
  rec.OnComplete(w, 30);
  const auto violations = CheckHistory(rec.ops());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, "stale-read");
  EXPECT_EQ(violations[0].op_id, r);
}

TEST(HistoryCheckerTest, TornReadIsFlagged) {
  HistoryRecorder rec;
  std::vector<std::uint8_t> v1(32, 1), garbage(32, 0xEE);
  const auto w = rec.OnInvoke(0, true, 1, 0, 32, 10,
                              HistoryRecorder::Digest(v1));
  rec.OnComplete(w, 20);
  const auto r = rec.OnInvoke(0, false, 1, 0, 32, 30);
  rec.OnComplete(r, 40, HistoryRecorder::Digest(garbage));
  const auto violations = CheckHistory(rec.ops());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, "torn-read");
}

TEST(HistoryCheckerTest, NeverCompletedOpIsFlagged) {
  HistoryRecorder rec;
  std::vector<std::uint8_t> v1(32, 1);
  rec.OnInvoke(0, true, 1, 0, 32, 10, HistoryRecorder::Digest(v1));
  const auto violations = CheckHistory(rec.ops());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, "never-completed");
}

TEST(HistoryCheckerTest, FutureReadIsFlagged) {
  HistoryRecorder rec;
  std::vector<std::uint8_t> v1(32, 1);
  // The read completes before the write is even invoked, yet observes it.
  const auto r = rec.OnInvoke(0, false, 1, 0, 32, 5);
  rec.OnComplete(r, 8, HistoryRecorder::Digest(v1));
  const auto w = rec.OnInvoke(1, true, 1, 0, 32, 10,
                              HistoryRecorder::Digest(v1));
  rec.OnComplete(w, 20);
  const auto violations = CheckHistory(rec.ops());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, "future-read");
}

// ---------------------------------------------------------------------------
// Plan derivation and serialization.
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, SerializeParsesBackIdentically) {
  FaultPlan plan = FaultPlan::FromSeed(1234, 2);
  plan.partitions.push_back(FaultPlan::Partition{1000, 2000});
  const auto parsed = FaultPlan::Parse(plan.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Serialize(), plan.Serialize());
  EXPECT_EQ(parsed->crashes, plan.crashes);
  ASSERT_EQ(parsed->partitions.size(), plan.partitions.size());
  EXPECT_EQ(parsed->partitions.back().start, 1000);
  EXPECT_EQ(parsed->partitions.back().end, 2000);
}

TEST(FaultPlanTest, CongestionScenarioRoundTrips) {
  for (const CongestionScenario scenario :
       {CongestionScenario::kIncast, CongestionScenario::kVictim,
        CongestionScenario::kPauseStorm}) {
    FaultPlan plan = FaultPlan::FromSeed(42, 1);
    plan.congestion = scenario;
    const std::string line = plan.Serialize();
    EXPECT_NE(line.find("congestion="), std::string::npos) << line;
    const auto parsed = FaultPlan::Parse(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_EQ(parsed->congestion, scenario);
    EXPECT_EQ(parsed->Serialize(), line);
  }
  EXPECT_FALSE(FaultPlan::Parse("congestion=bogus").has_value());
}

TEST(FaultPlanTest, LegacyLinesWithoutCongestionKeyStayByteCompatible) {
  // Traces captured before the congestion scenarios existed have no
  // congestion= token: they must parse to kNone and re-serialize to the
  // exact same bytes, so replaying an old trace dir still works and a
  // kNone plan never grows the new key.
  FaultPlan plan = FaultPlan::FromSeed(1234, 2);
  ASSERT_EQ(plan.congestion, CongestionScenario::kNone);
  const std::string line = plan.Serialize();
  EXPECT_EQ(line.find("congestion="), std::string::npos) << line;
  const auto parsed = FaultPlan::Parse(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->congestion, CongestionScenario::kNone);
  EXPECT_EQ(parsed->Serialize(), line);
}

TEST(FaultPlanTest, FromSeedIsDeterministic) {
  const FaultPlan a = FaultPlan::FromSeed(77, 1);
  const FaultPlan b = FaultPlan::FromSeed(77, 1);
  EXPECT_EQ(a.Serialize(), b.Serialize());
  const FaultPlan c = FaultPlan::FromSeed(78, 1);
  EXPECT_NE(a.Serialize(), c.Serialize());
}

// ---------------------------------------------------------------------------
// Full chaos runs.
// ---------------------------------------------------------------------------

ChaosOptions BaseOptions(EngineKind engine, std::uint64_t seed) {
  ChaosOptions opt;
  opt.engine = engine;
  opt.seed = seed;
  opt.workload.threads = 2;
  opt.workload.slots_per_thread = 4;
  opt.workload.len = 128;
  opt.workload.ops_per_thread = 200;
  return opt;
}

TEST(ChaosRunTest, InjectedFaultCountersMatchDecisionsExactly) {
  const std::uint64_t seed = TestSeed(11);
  COWBIRD_SCOPED_SEED(seed);
  ChaosOptions opt = BaseOptions(EngineKind::kSpot, seed);
  opt.plan.drop_rate = 0.02;
  opt.plan.duplicate_rate = 0.02;
  opt.plan.reorder_rate = 0.02;
  opt.plan.delay_rate = 0.05;
  const ChaosResult result = RunChaos(opt);
  EXPECT_GT(result.faults_injected, 0u);
  EXPECT_TRUE(result.counters_exact);
  EXPECT_TRUE(result.violations.empty()) << Report(result);
  EXPECT_GT(result.reads_checked, 50u);
}

class ChaosEngineTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ChaosEngineTest, LinearizesUnderMixedPacketFaults) {
  const std::uint64_t base = TestSeed(1);
  for (std::uint64_t seed = base; seed < base + 3; ++seed) {
    COWBIRD_SCOPED_SEED(seed);
    ChaosOptions opt = BaseOptions(GetParam(), seed);
    opt.plan = FaultPlan::FromSeed(seed, /*crash_count=*/0);
    const ChaosResult result = RunChaos(opt);
    EXPECT_TRUE(result.violations.empty()) << Report(result);
    EXPECT_TRUE(result.counters_exact);
    EXPECT_GT(result.reads_checked, 50u);
  }
}

TEST_P(ChaosEngineTest, LinearizesAcrossEngineCrashes) {
  const std::uint64_t base = TestSeed(21);
  for (std::uint64_t seed = base; seed < base + 3; ++seed) {
    COWBIRD_SCOPED_SEED(seed);
    ChaosOptions opt = BaseOptions(GetParam(), seed);
    opt.plan = FaultPlan::FromSeed(seed, /*crash_count=*/2);
    const ChaosResult result = RunChaos(opt);
    EXPECT_GE(result.crashes_executed, 1u);
    EXPECT_TRUE(result.violations.empty()) << Report(result);
    EXPECT_GT(result.reads_checked, 50u);
  }
}

// The canary the whole harness exists for: disable the read-after-write
// fence (a real consistency bug) and require the checker to notice. A
// harness that cannot catch a planted bug proves nothing when it passes.
TEST_P(ChaosEngineTest, BrokenFenceIsCaught) {
  const std::uint64_t base = TestSeed(5);
  std::uint64_t caught = 0;
  for (std::uint64_t seed = base; seed < base + 3; ++seed) {
    COWBIRD_SCOPED_SEED(seed);
    ChaosOptions opt = BaseOptions(GetParam(), seed);
    opt.break_fence = true;
    opt.workload.slots_per_thread = 1;  // hot slot: constant RAW conflicts
    opt.workload.write_ratio = 0.5;
    const ChaosResult result = RunChaos(opt);
    for (const Violation& v : result.violations) {
      if (v.kind == "stale-read") ++caught;
    }
  }
  EXPECT_GT(caught, 0u)
      << "checker failed to catch the deliberately broken fence";
}

INSTANTIATE_TEST_SUITE_P(Engines, ChaosEngineTest,
                         ::testing::Values(EngineKind::kSpot,
                                           EngineKind::kP4),
                         [](const ::testing::TestParamInfo<EngineKind>& info) {
                           return std::string(EngineKindName(info.param));
                         });

}  // namespace
}  // namespace cowbird::chaos
