// Elastic cluster pool (DESIGN.md §14): grow/shrink/spill semantics of the
// multi-server allocator, and the exactness of the translation table the
// P4 range-match stage and the spot agent both mirror.
#include <gtest/gtest.h>

#include <string>

#include "core/cluster_pool.h"
#include "core/instance.h"
#include "fabric_fixture.h"

namespace cowbird::core {
namespace {

using cowbird::testing::TestFabric;

constexpr std::uint64_t kSlabA = 0x100000;
constexpr std::uint64_t kSlabB = 0x900000;
constexpr std::uint64_t kVbase = 0x4000'0000;
constexpr std::uint16_t kRegion = 7;

class ClusterPoolTest : public ::testing::Test {
 protected:
  TestFabric f_;
  ClusterPool pool_;
};

TEST_F(ClusterPoolTest, SingleServerRegionIsOneIdentityRange) {
  pool_.AddServer(f_.memory_dev, kSlabA, KiB(64));
  const auto region = pool_.AllocateRegion(kRegion, kVbase, KiB(16),
                                           TestFabric::kMemoryId);
  ASSERT_TRUE(region.has_value());
  EXPECT_EQ(region->region_id, kRegion);
  EXPECT_EQ(region->remote_base, kVbase);
  EXPECT_EQ(region->size, KiB(16));
  const auto ranges = pool_.RangesFor(kRegion);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].node, TestFabric::kMemoryId);
  EXPECT_EQ(ranges[0].length, KiB(16));
}

TEST_F(ClusterPoolTest, ExhaustedPreferredServerSpillsToTheNext) {
  pool_.AddServer(f_.memory_dev, kSlabA, KiB(16));
  pool_.AddServer(f_.spot_dev, kSlabB, MiB(1));
  // 64 KiB region into a 16 KiB preferred slab: the head lands on the
  // preferred server, the tail spills — two ranges, contiguous virtually.
  const auto region = pool_.AllocateRegion(kRegion, kVbase, KiB(64),
                                           TestFabric::kMemoryId);
  ASSERT_TRUE(region.has_value());
  const auto ranges = pool_.RangesFor(kRegion);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].node, TestFabric::kMemoryId);
  EXPECT_EQ(ranges[0].length, KiB(16));
  EXPECT_EQ(ranges[1].node, TestFabric::kSpotId);
  EXPECT_EQ(ranges[1].length, KiB(48));
  EXPECT_EQ(ranges[0].vbase + ranges[0].length, ranges[1].vbase);
}

TEST_F(ClusterPoolTest, AllocationTooBigForTheWholeClusterLeaksNothing) {
  pool_.AddServer(f_.memory_dev, kSlabA, KiB(16));
  pool_.AddServer(f_.spot_dev, kSlabB, KiB(16));
  EXPECT_FALSE(
      pool_.AllocateRegion(kRegion, kVbase, KiB(64), TestFabric::kMemoryId)
          .has_value());
  // Nothing was carved: the full capacity is still allocatable.
  EXPECT_TRUE(
      pool_.AllocateRegion(kRegion, kVbase, KiB(32), TestFabric::kMemoryId)
          .has_value());
}

TEST_F(ClusterPoolTest, ShrinkRefusesWhileRangesAreLiveAndNamesThem) {
  pool_.AddServer(f_.memory_dev, kSlabA, KiB(64));
  pool_.AddServer(f_.spot_dev, kSlabB, KiB(64));
  ASSERT_TRUE(pool_.AllocateRegion(kRegion, kVbase, KiB(16),
                                   TestFabric::kMemoryId)
                  .has_value());
  std::string error;
  EXPECT_FALSE(pool_.RemoveServer(TestFabric::kMemoryId, &error));
  // The refusal names the squatting region so the operator knows what to
  // migrate first.
  EXPECT_NE(error.find("region 7"), std::string::npos) << error;
  // The idle server shrinks fine; after releasing the region, so does the
  // occupied one.
  EXPECT_TRUE(pool_.RemoveServer(TestFabric::kSpotId));
  pool_.ReleaseRegion(kRegion);
  EXPECT_TRUE(pool_.RemoveServer(TestFabric::kMemoryId, &error)) << error;
  EXPECT_TRUE(pool_.servers().empty());
}

TEST_F(ClusterPoolTest, TranslationResolvesFirstAndLastByteOfEachRange) {
  pool_.AddServer(f_.memory_dev, kSlabA, KiB(16));
  pool_.AddServer(f_.spot_dev, kSlabB, MiB(1));
  ASSERT_TRUE(pool_.AllocateRegion(kRegion, kVbase, KiB(32),
                                   TestFabric::kMemoryId)
                  .has_value());
  // First byte of the region.
  auto t = pool_.table().Lookup(kRegion, kVbase, 1);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->node, TestFabric::kMemoryId);
  EXPECT_EQ(t->addr, kSlabA);
  // Last byte of the preferred range.
  t = pool_.table().Lookup(kRegion, kVbase + KiB(16) - 1, 1);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->node, TestFabric::kMemoryId);
  EXPECT_EQ(t->addr, kSlabA + KiB(16) - 1);
  // First byte past the boundary resolves to the spill server.
  t = pool_.table().Lookup(kRegion, kVbase + KiB(16), 1);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->node, TestFabric::kSpotId);
  EXPECT_EQ(t->addr, kSlabB);
  // Last byte of the region.
  t = pool_.table().Lookup(kRegion, kVbase + KiB(32) - 1, 1);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->node, TestFabric::kSpotId);
  // An access straddling the range boundary must not silently resolve to
  // the first range.
  TranslateError error;
  EXPECT_FALSE(
      pool_.table().Lookup(kRegion, kVbase + KiB(16) - 8, 16, &error)
          .has_value());
  EXPECT_EQ(error.kind, TranslateError::Kind::kStraddle);
}

TEST_F(ClusterPoolTest, UnmappedHoleFailsWithAStructuredError) {
  pool_.AddServer(f_.memory_dev, kSlabA, MiB(1));
  ASSERT_TRUE(pool_.AllocateRegion(kRegion, kVbase, KiB(16),
                                   TestFabric::kMemoryId)
                  .has_value());
  ASSERT_TRUE(pool_.AllocateRegion(kRegion + 1, kVbase + MiB(16), KiB(16),
                                   TestFabric::kMemoryId)
                  .has_value());
  TranslateError error;
  EXPECT_FALSE(pool_.table()
                   .Lookup(kRegion, kVbase + MiB(8), 64, &error)
                   .has_value());
  EXPECT_EQ(error.kind, TranslateError::Kind::kUnmappedHole);
  EXPECT_TRUE(error.has_below);
  // The report names the faulting address and the nearest mapped ranges,
  // page-fault style.
  const std::string text = error.ToString();
  EXPECT_NE(text.find("hole"), std::string::npos) << text;
  // Unknown region id is its own kind.
  EXPECT_FALSE(
      pool_.table().Lookup(kRegion + 9, kVbase, 64, &error).has_value());
  EXPECT_EQ(error.kind, TranslateError::Kind::kUnknownRegion);
}

TEST_F(ClusterPoolTest, CommitMoveRetargetsAtomicallyAndFreesTheSource) {
  pool_.AddServer(f_.memory_dev, kSlabA, KiB(64));
  pool_.AddServer(f_.spot_dev, kSlabB, KiB(64));
  ASSERT_TRUE(pool_.AllocateRegion(kRegion, kVbase, KiB(16),
                                   TestFabric::kMemoryId)
                  .has_value());
  const auto plan = pool_.PlanMove(kRegion, kVbase, TestFabric::kSpotId);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->src_node, TestFabric::kMemoryId);
  EXPECT_EQ(plan->dst_node, TestFabric::kSpotId);
  // Before the commit every lookup still resolves to the source.
  EXPECT_EQ(pool_.table().Lookup(kRegion, kVbase, 1)->node,
            TestFabric::kMemoryId);
  pool_.CommitMove(*plan);
  EXPECT_EQ(pool_.table().Lookup(kRegion, kVbase, 1)->node,
            TestFabric::kSpotId);
  // The source extent was released: the source server is now removable.
  EXPECT_TRUE(pool_.RemoveServer(TestFabric::kMemoryId));
}

TEST_F(ClusterPoolTest, AbortMoveReleasesTheReservedDestination) {
  pool_.AddServer(f_.memory_dev, kSlabA, KiB(64));
  pool_.AddServer(f_.spot_dev, kSlabB, KiB(16));
  ASSERT_TRUE(pool_.AllocateRegion(kRegion, kVbase, KiB(16),
                                   TestFabric::kMemoryId)
                  .has_value());
  const auto plan = pool_.PlanMove(kRegion, kVbase, TestFabric::kSpotId);
  ASSERT_TRUE(plan.has_value());
  // The destination slab is fully reserved: a second plan cannot fit.
  EXPECT_FALSE(
      pool_.PlanMove(kRegion, kVbase, TestFabric::kSpotId).has_value());
  pool_.AbortMove(*plan);
  EXPECT_TRUE(
      pool_.PlanMove(kRegion, kVbase, TestFabric::kSpotId).has_value());
}

TEST_F(ClusterPoolTest, DescriptorShipsClusterRangesToTheEngineMirror) {
  pool_.AddServer(f_.memory_dev, kSlabA, KiB(16));
  pool_.AddServer(f_.spot_dev, kSlabB, MiB(1));
  const auto region = pool_.AllocateRegion(kRegion, kVbase, KiB(32),
                                           TestFabric::kMemoryId);
  ASSERT_TRUE(region.has_value());
  InstanceDescriptor desc;
  desc.regions.push_back(*region);
  desc.ranges = pool_.RangesFor(kRegion);
  const TranslationTable mirror = desc.BuildTranslation();
  ASSERT_EQ(mirror.size(), 2u);
  EXPECT_EQ(mirror.Lookup(kRegion, kVbase + KiB(16), 1)->node,
            TestFabric::kSpotId);

  // Without explicit ranges the mirror falls back to identity mapping —
  // the pre-elastic-pool behavior every legacy caller still relies on.
  InstanceDescriptor legacy;
  legacy.regions.push_back(RegionInfo{kRegion, TestFabric::kMemoryId,
                                      kVbase, region->rkey, KiB(32)});
  const TranslationTable identity = legacy.BuildTranslation();
  const auto t = identity.Lookup(kRegion, kVbase + 100, 1);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->node, TestFabric::kMemoryId);
  EXPECT_EQ(t->addr, kVbase + 100);
}

}  // namespace
}  // namespace cowbird::core
