#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/ring.h"
#include "common/rng.h"
#include "common/sparse_memory.h"
#include "common/stats.h"
#include "common/units.h"

namespace cowbird {
namespace {

TEST(Units, TransmitTimeMatchesRate) {
  const BitRate r = BitRate::Gbps(100);
  // 100 Gbps = 12.5 bytes per ns → 1250 bytes take 100 ns.
  EXPECT_EQ(r.TransmitTime(1250), 100);
  // Rounds up: 1 byte at 100 Gbps is 0.08 ns → 1 ns.
  EXPECT_EQ(r.TransmitTime(1), 1);
  EXPECT_EQ(r.TransmitTime(0), 0);
}

TEST(Units, TransmitTimeSlowLink) {
  const BitRate r = BitRate::Mbps(1);
  EXPECT_EQ(r.TransmitTime(125), Micros(1000));  // 1000 bits at 1 Mbps = 1 ms
}

TEST(Units, MopsConversion) {
  EXPECT_DOUBLE_EQ(Mops(1'000'000, Seconds(1)), 1.0);
  EXPECT_DOUBLE_EQ(Mops(0, Seconds(1)), 0.0);
  EXPECT_DOUBLE_EQ(Mops(5, 0), 0.0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.Between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(PercentileSampler, ExactQuantiles) {
  PercentileSampler p;
  for (int i = 1; i <= 100; ++i) p.Add(i);
  EXPECT_NEAR(p.Median(), 50.5, 1e-9);
  EXPECT_NEAR(p.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(p.Quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(p.P99(), 99.01, 1e-9);
}

TEST(PercentileSampler, InterleavedAddAndQuery) {
  PercentileSampler p;
  p.Add(10);
  EXPECT_DOUBLE_EQ(p.Median(), 10.0);
  p.Add(20);  // must re-sort lazily
  EXPECT_DOUBLE_EQ(p.Median(), 15.0);
}

TEST(PercentileSampler, AddAfterQuantileInvalidatesSortCache) {
  // Regression: Add() used to leave the sorted_ flag set after a Quantile()
  // call, so later queries indexed into a stale, unsorted vector. Append
  // out of order so a stale cache yields a visibly wrong rank.
  PercentileSampler p;
  p.Add(30);
  EXPECT_DOUBLE_EQ(p.Median(), 30.0);  // sorts and caches
  p.Add(10);
  p.Add(20);
  EXPECT_DOUBLE_EQ(p.Median(), 20.0);
  EXPECT_DOUBLE_EQ(p.Quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(p.Quantile(1.0), 30.0);
}

TEST(PercentileSampler, ClearResetsSortCache) {
  PercentileSampler p;
  p.Add(5);
  EXPECT_DOUBLE_EQ(p.Median(), 5.0);
  p.Clear();
  p.Add(9);
  p.Add(1);
  EXPECT_DOUBLE_EQ(p.Median(), 5.0);
  EXPECT_DOUBLE_EQ(p.Quantile(0.0), 1.0);
}

TEST(LogHistogram, QuantileBounds) {
  LogHistogram h;
  for (int i = 0; i < 1000; ++i) h.Add(100);   // bucket [64,128)
  for (int i = 0; i < 10; ++i) h.Add(100000);  // far tail
  EXPECT_LE(h.QuantileUpperBound(0.5), 127u);
  EXPECT_GE(h.QuantileUpperBound(0.999), 100000u - 1);
}

TEST(RingCursors, PushPopWrap) {
  RingCursors ring(4);
  EXPECT_TRUE(ring.Empty());
  for (std::uint64_t round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      EXPECT_FALSE(ring.Full());
      const auto cursor = ring.Push();
      EXPECT_EQ(ring.Slot(cursor), (round * 4 + i) % 4);
    }
    EXPECT_TRUE(ring.Full());
    for (std::uint64_t i = 0; i < 4; ++i) ring.Pop();
    EXPECT_TRUE(ring.Empty());
  }
  // Cursors are monotonic, never reset by wrap.
  EXPECT_EQ(ring.head(), 12u);
  EXPECT_EQ(ring.tail(), 12u);
}

TEST(RingCursors, AdvanceTo) {
  RingCursors ring(8);
  for (int i = 0; i < 5; ++i) ring.Push();
  ring.AdvanceHeadTo(3);
  EXPECT_EQ(ring.Size(), 2u);
  ring.AdvanceTailTo(9);
  EXPECT_EQ(ring.Size(), 6u);
}

TEST(ByteRing, ReserveRelease) {
  ByteRing ring(100);
  EXPECT_TRUE(ring.CanReserve(100));
  EXPECT_FALSE(ring.CanReserve(101));
  const auto at = ring.Reserve(60);
  EXPECT_EQ(at, 0u);
  EXPECT_EQ(ring.Free(), 40u);
  ring.Release(60);
  EXPECT_EQ(ring.Free(), 100u);
}

TEST(ByteRing, SplitSpanWraps) {
  ByteRing ring(100);
  ring.Reserve(80);
  ring.Release(80);
  const auto at = ring.Reserve(50);  // bytes 80..130 → wraps at 100
  const auto split = ring.SplitSpan(at, 50);
  EXPECT_EQ(split.first.offset, 80u);
  EXPECT_EQ(split.first.len, 20u);
  EXPECT_EQ(split.second.offset, 0u);
  EXPECT_EQ(split.second.len, 30u);
}

TEST(ByteRing, SplitSpanNoWrap) {
  ByteRing ring(100);
  const auto split = ring.SplitSpan(10, 50);
  EXPECT_EQ(split.first.offset, 10u);
  EXPECT_EQ(split.first.len, 50u);
  EXPECT_EQ(split.second.len, 0u);
}

TEST(SparseMemory, ReadBackWritten) {
  SparseMemory mem;
  std::vector<std::uint8_t> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  mem.Write(123456, data);
  std::vector<std::uint8_t> out(data.size());
  mem.Read(123456, out);
  EXPECT_EQ(out, data);
}

TEST(SparseMemory, UnwrittenReadsZero) {
  SparseMemory mem;
  std::vector<std::uint8_t> out(64, 0xFF);
  mem.Read(1ull << 40, out);
  for (auto b : out) EXPECT_EQ(b, 0);
}

TEST(SparseMemory, CrossPageWrite) {
  SparseMemory mem;
  std::vector<std::uint8_t> data(SparseMemory::kPageSize * 3, 0xAB);
  const std::uint64_t addr = SparseMemory::kPageSize - 100;
  mem.Write(addr, data);
  std::vector<std::uint8_t> out(data.size());
  mem.Read(addr, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(mem.ResidentPages(), 4u);
}

TEST(SparseMemory, TypedValues) {
  SparseMemory mem;
  mem.WriteValue<std::uint64_t>(8, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(mem.ReadValue<std::uint64_t>(8), 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(mem.ReadValue<std::uint32_t>(8), 0xCAFEF00Du);  // little endian
}

}  // namespace
}  // namespace cowbird
