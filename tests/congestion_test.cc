// Shared-fabric congestion behavior, end to end:
//
//   * DCQCN rate convergence at the QP level — two flows incast into one
//     congested egress port converge to within 10% of fair share, and a
//     victim flow on an uncongested port keeps >= 90% of its solo rate.
//     Both are property tests: COWBIRD_TEST_SEED varies the read offset
//     streams, the convergence claims must hold for any seed.
//   * The chaos congestion scenarios (incast / victim / pause_storm) pass
//     their invariant checks, surface their counters, and stay
//     bit-deterministic: the seed sweep report is byte-identical for any
//     --jobs value, and split runs are bit-identical across worker counts
//     under both split scopes.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chaos/runner.h"
#include "chaos/sweep.h"
#include "common/rng.h"
#include "common/sparse_memory.h"
#include "net/switch.h"
#include "rdma/congestion.h"
#include "rdma/device.h"
#include "rdma/qp.h"
#include "sim/simulation.h"
#include "test_seed.h"

namespace cowbird {
namespace {

using rdma::QpPair;
using testing::TestSeed;

// ---------------------------------------------------------------- DCQCN

constexpr Bytes kReadBytes = 4096;
constexpr Bytes kPoolBytes = MiB(8);
constexpr std::uint64_t kPoolBase = 0x100000;

// Four hosts on one switch, fabric tuned like the abl_incast ECN policy:
// shallow marked queues, DCQCN on every NIC, and a Go-Back-N timeout above
// the congested RTT so pacing delay is not misread as loss. PFC stays off
// here on purpose — a pause asserted against a memory host's ingress would
// hold its whole uplink (head-of-line blocking), and these tests isolate
// what the *rate control* converges to.
struct CongestedFabric {
  static constexpr int kHosts = 5;

  sim::Simulation sim;
  rdma::FabricParams fabric;
  rdma::NicConfig nic_config;
  net::Switch sw;
  std::vector<std::unique_ptr<net::HostNic>> nics;
  std::vector<std::unique_ptr<SparseMemory>> mems;
  std::vector<std::unique_ptr<rdma::Device>> devs;

  static rdma::NicConfig MakeNicConfig() {
    rdma::NicConfig nc;
    nc.retransmit_timeout = Millis(1);
    nc.dcqcn.enabled = true;
    // Gentler loop than the 12-client bench tuning: with only two flows a
    // cut on every recovery step parks both at the floor, so space the
    // CNPs two recovery periods apart and recover faster. This is ordinary
    // DCQCN deployment tuning — the convergence claim is about the
    // equilibrium, not one parameter point.
    nc.dcqcn.cnp_interval = Micros(50);
    nc.dcqcn.rate_ai_gbps = 4.0;
    nc.dcqcn.min_rate_gbps = 5.0;
    return nc;
  }

  CongestedFabric()
      : nic_config(MakeNicConfig()),
        sw(sim, net::Switch::Config{
                    // Deep enough to absorb the opening burst (two 32-deep
                    // windows of 4 KiB responses land before the first CNP
                    // can): one tail-drop costs a 1 ms Go-Back-N stall and
                    // turns the run into an RTO cycle instead of a pacing
                    // equilibrium. Marking still starts at 16 KiB.
                    .egress_queue_capacity = KiB(512),
                    .pipeline_latency = fabric.switch_pipeline,
                    .ecn_threshold = KiB(16),
                }) {
    for (int h = 0; h < kHosts; ++h) {
      nics.push_back(std::make_unique<net::HostNic>(
          sim, static_cast<net::NodeId>(h + 1), fabric.host_link,
          fabric.link_propagation));
      mems.push_back(std::make_unique<SparseMemory>());
      devs.push_back(
          std::make_unique<rdma::Device>(*nics[h], *mems[h], nic_config));
      nics[h]->ConnectTo(sw);
    }
  }
};

// Closed-loop read driver: keeps `window` 4 KiB reads outstanding on one QP
// pair, reposting on every completion at seeded random pool offsets, and
// counts the bytes completed inside the [measure_from, measure_until)
// window. Polling rides the event loop (no SimThread): a short periodic
// pump pops completions and reposts.
class ReadLoad {
 public:
  ReadLoad(sim::Simulation& sim, QpPair pair, const rdma::MemoryRegion* mr,
           int window, std::uint64_t seed)
      : sim_(&sim), pair_(pair), mr_(mr), window_(window), rng_(seed) {}

  void Start(Nanos measure_from, Nanos measure_until) {
    measure_from_ = measure_from;
    measure_until_ = measure_until;
    for (int i = 0; i < window_; ++i) PostOne();
    Pump();
  }

  std::uint64_t measured_bytes() const { return measured_bytes_; }
  double MeasuredGbps() const {
    return static_cast<double>(measured_bytes_) * 8.0 /
           static_cast<double>(measure_until_ - measure_from_);
  }

 private:
  void PostOne() {
    const std::uint64_t record =
        rng_.Next() % (kPoolBytes / kReadBytes);
    pair_.a->PostSend(rdma::SendWqe{
        rdma::WqeOp::kRead, next_wr_++,
        /*laddr=*/0x20000 + (next_wr_ % 64) * kReadBytes,
        mr_->base + record * kReadBytes, mr_->rkey,
        static_cast<std::uint32_t>(kReadBytes), true});
  }

  void Pump() {
    const Nanos now = sim_->Now();
    while (auto cqe = pair_.a_send_cq->Pop()) {
      if (now >= measure_from_ && now < measure_until_) {
        measured_bytes_ += kReadBytes;
      }
      if (now < measure_until_) PostOne();
    }
    if (now < measure_until_) {
      sim_->ScheduleAfter(500, [this] { Pump(); });
    }
  }

  sim::Simulation* sim_;
  QpPair pair_;
  const rdma::MemoryRegion* mr_;
  int window_;
  Rng rng_;
  std::uint64_t next_wr_ = 0;
  Nanos measure_from_ = 0;
  Nanos measure_until_ = 0;
  std::uint64_t measured_bytes_ = 0;
};

// Long enough that the sawtooth's phase does not dominate the average: the
// fairness claim is about the converged mean, several periods in.
constexpr Nanos kWarmup = Millis(1);
constexpr Nanos kMeasure = Millis(8);

TEST(DcqcnConvergence, TwoCompetingFlowsConvergeToFairShare) {
  const std::uint64_t seed = TestSeed(21);
  COWBIRD_SCOPED_SEED(seed);
  CongestedFabric f;
  // Host 0 reads from hosts 1 and 2 simultaneously: two 100G response
  // streams incast into host 0's single 100G egress port.
  QpPair flow1 = ConnectQueuePairs(*f.devs[0], *f.devs[1]);
  QpPair flow2 = ConnectQueuePairs(*f.devs[0], *f.devs[2]);
  const auto* mr1 = f.devs[1]->RegisterMemory(kPoolBase, kPoolBytes);
  const auto* mr2 = f.devs[2]->RegisterMemory(kPoolBase, kPoolBytes);
  f.mems[1]->PreFault(kPoolBase, kPoolBytes);
  f.mems[2]->PreFault(kPoolBase, kPoolBytes);

  ReadLoad load1(f.sim, flow1, mr1, /*window=*/32, seed * 2 + 1);
  ReadLoad load2(f.sim, flow2, mr2, /*window=*/32, seed * 2 + 2);
  load1.Start(kWarmup, kWarmup + kMeasure);
  load2.Start(kWarmup, kWarmup + kMeasure);
  f.sim.Run();

  const double rate1 = load1.MeasuredGbps();
  const double rate2 = load2.MeasuredGbps();
  const double fair = (rate1 + rate2) / 2;
  // The control loop really ran: marks were made and CNPs echoed back.
  EXPECT_GT(f.sw.ecn_marked(), 0u);
  EXPECT_GT(f.devs[1]->congestion()->cnps_received(), 0u);
  EXPECT_GT(f.devs[2]->congestion()->cnps_received(), 0u);
  // Convergence: each flow within 10% of the fair share of whatever the
  // two of them achieved together, and the total did not collapse (the
  // congestion-unaware failure mode is a retransmission storm that leaves
  // a fraction of line rate).
  EXPECT_GT(rate1, 0.9 * fair) << rate1 << " vs " << rate2;
  EXPECT_LT(rate1, 1.1 * fair) << rate1 << " vs " << rate2;
  EXPECT_GT(rate1 + rate2, 50.0) << "aggregate collapsed";
}

TEST(DcqcnConvergence, VictimFlowOnUncongestedPortKeepsItsSoloRate) {
  const std::uint64_t seed = TestSeed(22);
  COWBIRD_SCOPED_SEED(seed);
  // The victim (host 3) reads from host 4 while host 0 incasts from hosts
  // 1 and 2: the victim's path — host 4's uplink, the switch, host 3's
  // egress port — is disjoint from the congested port at every queue. The
  // property pins port-level isolation: congestion control must confine
  // the incast to port 0 (per-port queues, no shared-buffer accounting,
  // no pause that reaches an innocent ingress), so the victim keeps
  // >= 90% of its solo rate. A victim sharing the *sender host's uplink*
  // with the incast is the chaos kVictim scenario's job, where the fair
  // verdict is checker invariants rather than a rate floor.
  const auto run = [&](bool with_incast) {
    CongestedFabric f;
    QpPair victim = ConnectQueuePairs(*f.devs[3], *f.devs[4]);
    const auto* mr1 = f.devs[1]->RegisterMemory(kPoolBase, kPoolBytes);
    const auto* mr2 = f.devs[2]->RegisterMemory(kPoolBase, kPoolBytes);
    const auto* mr4 = f.devs[4]->RegisterMemory(kPoolBase, kPoolBytes);
    f.mems[1]->PreFault(kPoolBase, kPoolBytes);
    f.mems[2]->PreFault(kPoolBase, kPoolBytes);
    f.mems[4]->PreFault(kPoolBase, kPoolBytes);
    ReadLoad victim_load(f.sim, victim, mr4, /*window=*/32, seed * 3 + 1);
    std::unique_ptr<ReadLoad> incast1, incast2;
    if (with_incast) {
      QpPair flow1 = ConnectQueuePairs(*f.devs[0], *f.devs[1]);
      QpPair flow2 = ConnectQueuePairs(*f.devs[0], *f.devs[2]);
      incast1 = std::make_unique<ReadLoad>(f.sim, flow1, mr1, 32,
                                           seed * 3 + 2);
      incast2 = std::make_unique<ReadLoad>(f.sim, flow2, mr2, 32,
                                           seed * 3 + 3);
      incast1->Start(kWarmup, kWarmup + kMeasure);
      incast2->Start(kWarmup, kWarmup + kMeasure);
    }
    victim_load.Start(kWarmup, kWarmup + kMeasure);
    f.sim.Run();
    if (with_incast) {
      // The incast genuinely congested port 0 while the victim measured.
      EXPECT_GT(f.sw.ecn_marked(), 0u);
    }
    return victim_load.MeasuredGbps();
  };
  const double solo = run(/*with_incast=*/false);
  const double contended = run(/*with_incast=*/true);
  EXPECT_GT(solo, 1.0);
  EXPECT_GE(contended, 0.9 * solo) << "solo=" << solo;
}

// ------------------------------------------------- chaos scenario suite

using chaos::ChaosOptions;
using chaos::ChaosResult;
using chaos::CongestionScenario;
using chaos::EngineKind;
using chaos::SplitScope;

bool SameChaosOutcome(const ChaosResult& a, const ChaosResult& b) {
  if (a.history.size() != b.history.size()) return false;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const chaos::OpRecord& x = a.history[i];
    const chaos::OpRecord& y = b.history[i];
    if (x.id != y.id || x.thread != y.thread || x.is_write != y.is_write ||
        x.offset != y.offset || x.length != y.length ||
        x.invoke != y.invoke || x.complete != y.complete ||
        x.digest != y.digest) {
      return false;
    }
  }
  return a.reads_checked == b.reads_checked &&
         a.writes_completed == b.writes_completed &&
         a.faults_injected == b.faults_injected &&
         a.crashes_executed == b.crashes_executed &&
         a.ecn_marked == b.ecn_marked && a.pfc_pauses == b.pfc_pauses &&
         a.link_pauses == b.link_pauses && a.cnps == b.cnps;
}

TEST(ChaosCongestion, ScenariosPassAndSurfaceTheirCounters) {
  for (const EngineKind engine : {EngineKind::kSpot, EngineKind::kP4}) {
    for (const CongestionScenario scenario :
         {CongestionScenario::kIncast, CongestionScenario::kVictim,
          CongestionScenario::kPauseStorm}) {
      ChaosOptions opt = chaos::SweepOptions(engine, /*seed=*/4);
      opt.plan.congestion = scenario;
      const ChaosResult result = chaos::RunChaos(opt);
      EXPECT_TRUE(result.Passed())
          << chaos::EngineKindName(engine) << " "
          << chaos::CongestionScenarioName(scenario);
      if (scenario == CongestionScenario::kPauseStorm) {
        EXPECT_GT(result.link_pauses, 0u);
      } else {
        // Incast and victim shrink the queues and turn on ECN+DCQCN; the
        // contention must actually mark packets and echo CNPs.
        EXPECT_GT(result.ecn_marked, 0u);
        EXPECT_GT(result.cnps, 0u);
      }
    }
  }
}

TEST(ChaosCongestion, IncastSplitBitIdenticalAcrossWorkersAndScopes) {
  ChaosOptions opt = chaos::SweepOptions(EngineKind::kSpot, /*seed=*/4);
  opt.plan.congestion = CongestionScenario::kIncast;
  opt.mode = chaos::ExecutionMode::kSplit;
  for (const SplitScope scope :
       {SplitScope::kPair, SplitScope::kPerNode, SplitScope::kPacked}) {
    opt.split_scope = scope;
    opt.split_workers = 1;
    const ChaosResult one = chaos::RunChaos(opt);
    EXPECT_TRUE(one.Passed());
    EXPECT_GT(one.ecn_marked, 0u);
    for (const int workers : {2, 4}) {
      opt.split_workers = workers;
      const ChaosResult many = chaos::RunChaos(opt);
      EXPECT_TRUE(SameChaosOutcome(one, many))
          << "scope="
          << (scope == SplitScope::kPair     ? "pair"
              : scope == SplitScope::kPerNode ? "node"
                                              : "packed")
          << " workers=" << workers;
    }
  }
}

TEST(ChaosCongestion, IncastSweepReportByteIdenticalAcrossJobs) {
  chaos::SweepConfig config;
  config.engines = {EngineKind::kSpot};
  config.seeds = 3;
  config.start = 2;
  config.congestion = CongestionScenario::kIncast;
  config.jobs = 1;
  const chaos::SweepOutcome one = chaos::RunSweep(config);
  EXPECT_TRUE(one.ok) << one.report;
  config.jobs = 4;
  const chaos::SweepOutcome many = chaos::RunSweep(config);
  EXPECT_TRUE(many.ok) << many.report;
  EXPECT_EQ(one.report, many.report);
}

}  // namespace
}  // namespace cowbird
