// Unit tests for the client library data structures (no offload engine;
// engine behaviour is emulated by writing the red block directly, exactly
// the memory-level interface an engine uses).
#include <gtest/gtest.h>

#include "core/client.h"
#include "core/layout.h"
#include "core/request.h"
#include "fabric_fixture.h"

namespace cowbird::core {
namespace {

using cowbird::testing::TestFabric;

TEST(Layout, RegionsDoNotOverlap) {
  InstanceLayout layout;
  layout.base = 0x1000;
  layout.threads = 4;
  layout.meta_slots = 128;
  layout.data_capacity = 4096;
  layout.resp_capacity = 8192;

  EXPECT_EQ(layout.GreenAddr(0), 0x1000u);
  EXPECT_EQ(layout.GreenAddr(3) + kGreenBlockBytes, layout.RedBase());
  EXPECT_EQ(layout.RedAddr(3) + kRedBlockBytes, layout.RingsBase());
  // Per-thread rings tile without gaps.
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(layout.RespRingAddr(t) + layout.resp_capacity,
              layout.MetaRingAddr(t + 1));
  }
  EXPECT_EQ(layout.MetaRingAddr(3) + layout.PerThreadRingBytes(),
            layout.base + layout.TotalBytes());
}

TEST(Layout, MetaSlotAddrWraps) {
  InstanceLayout layout;
  layout.base = 0;
  layout.threads = 1;
  layout.meta_slots = 8;
  EXPECT_EQ(layout.MetaSlotAddr(0, 0), layout.MetaRingAddr(0));
  EXPECT_EQ(layout.MetaSlotAddr(0, 8), layout.MetaRingAddr(0));
  EXPECT_EQ(layout.MetaSlotAddr(0, 9),
            layout.MetaRingAddr(0) + kMetadataEntryBytes);
}

TEST(RequestMetadata, PublishParseRoundTrip) {
  SparseMemory mem;
  RequestMetadata m;
  m.rw_type = RwType::kWrite;
  m.region_id = 7;
  m.length = 4096;
  m.req_addr = 0xAABBCCDD0011ull;
  m.resp_addr = 0x1122334455667788ull;
  m.Publish(mem, 0x500);
  std::vector<std::uint8_t> raw(kMetadataEntryBytes);
  mem.Read(0x500, raw);
  const RequestMetadata parsed = RequestMetadata::ParseBytes(raw);
  EXPECT_EQ(parsed.rw_type, RwType::kWrite);
  EXPECT_EQ(parsed.region_id, 7);
  EXPECT_EQ(parsed.length, 4096u);
  EXPECT_EQ(parsed.req_addr, m.req_addr);
  EXPECT_EQ(parsed.resp_addr, m.resp_addr);
}

TEST(RequestMetadata, UnwrittenEntryParsesInvalid) {
  SparseMemory mem;
  std::vector<std::uint8_t> raw(kMetadataEntryBytes);
  mem.Read(0x900, raw);
  EXPECT_EQ(RequestMetadata::ParseBytes(raw).rw_type, RwType::kInvalid);
}

TEST(ReqIdTest, EncodesAllFields) {
  const ReqId r = ReqId::Make(RwType::kRead, 5, 123456);
  EXPECT_EQ(r.type(), RwType::kRead);
  EXPECT_EQ(r.thread(), 5);
  EXPECT_EQ(r.seq(), 123456u);
  const ReqId w = ReqId::Make(RwType::kWrite, 32767, (1ull << 48) - 1);
  EXPECT_EQ(w.type(), RwType::kWrite);
  EXPECT_EQ(w.thread(), 32767);
  EXPECT_EQ(w.seq(), (1ull << 48) - 1);
  EXPECT_TRUE(w.valid());
  EXPECT_FALSE(ReqId().valid());
}

class ClientTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kBufBase = 0x10000;
  static constexpr std::uint64_t kHeap = 0x4000000;  // app heap
  static constexpr std::uint16_t kRegion = 1;

  ClientTest() {
    CowbirdClient::Config config;
    config.layout.base = kBufBase;
    config.layout.threads = 2;
    config.layout.meta_slots = 8;
    config.layout.data_capacity = 4096;
    config.layout.resp_capacity = 4096;
    client_ = std::make_unique<CowbirdClient>(f_.compute_dev, config);
    client_->RegisterRegion(RegionInfo{kRegion, TestFabric::kMemoryId,
                                       0x100000, 0xAB, MiB(64)});
    thread_ = std::make_unique<sim::SimThread>(f_.compute_machine, "app");
  }

  // Emulates the offload engine publishing progress: writes the red block
  // for `t` directly into compute memory.
  void WriteRed(int t, std::uint64_t meta_head, std::uint64_t write_prog,
                std::uint64_t read_prog) {
    const auto& layout = client_->descriptor().layout;
    auto& mem = f_.compute_mem;
    mem.WriteValue<std::uint64_t>(layout.RedAddr(t), meta_head);
    mem.WriteValue<std::uint64_t>(layout.RedAddr(t) + 24, write_prog);
    mem.WriteValue<std::uint64_t>(layout.RedAddr(t) + 32, read_prog);
  }

  // Runs a client coroutine to completion.
  template <typename Fn>
  void RunClient(Fn&& fn) {
    f_.sim.Spawn(fn());
    f_.sim.Run();
  }

  TestFabric f_;
  std::unique_ptr<CowbirdClient> client_;
  std::unique_ptr<sim::SimThread> thread_;
};

TEST_F(ClientTest, AsyncReadPublishesMetadataAndTail) {
  std::optional<ReqId> id;
  RunClient([&]() -> sim::Task<void> {
    id = co_await client_->thread(0).AsyncRead(*thread_, kRegion, 0x2000,
                                               kHeap, 256);
  });
  EXPECT_TRUE(id.has_value());
  EXPECT_EQ(id->type(), RwType::kRead);
  EXPECT_EQ(id->thread(), 0);
  EXPECT_EQ(id->seq(), 1u);

  const auto& layout = client_->descriptor().layout;
  // Green tail advanced to 1.
  EXPECT_EQ(f_.compute_mem.ReadValue<std::uint64_t>(layout.GreenAddr(0)), 1u);
  // Thread 1's green block untouched.
  EXPECT_EQ(f_.compute_mem.ReadValue<std::uint64_t>(layout.GreenAddr(1)), 0u);
  // The published entry matches Table 3.
  std::vector<std::uint8_t> raw(kMetadataEntryBytes);
  f_.compute_mem.Read(layout.MetaSlotAddr(0, 0), raw);
  const auto meta = RequestMetadata::ParseBytes(raw);
  EXPECT_EQ(meta.rw_type, RwType::kRead);
  EXPECT_EQ(meta.region_id, kRegion);
  EXPECT_EQ(meta.length, 256u);
  EXPECT_EQ(meta.req_addr, 0x100000u + 0x2000u);  // absolute pool address
  EXPECT_EQ(meta.resp_addr, layout.RespRingAddr(0));
}

TEST_F(ClientTest, AsyncWriteStagesPayload) {
  std::vector<std::uint8_t> payload(100, 0x5A);
  f_.compute_mem.Write(kHeap, payload);
  std::optional<ReqId> id;
  RunClient([&]() -> sim::Task<void> {
    id = co_await client_->thread(0).AsyncWrite(*thread_, kRegion, kHeap,
                                                0x3000, 100);
  });
  EXPECT_TRUE(id.has_value());
  EXPECT_EQ(id->type(), RwType::kWrite);

  const auto& layout = client_->descriptor().layout;
  // Payload copied into the request data ring.
  std::vector<std::uint8_t> staged(100);
  f_.compute_mem.Read(layout.DataRingAddr(0), staged);
  EXPECT_EQ(staged, payload);
  // Green data tail advanced.
  EXPECT_EQ(f_.compute_mem.ReadValue<std::uint64_t>(layout.GreenAddr(0) + 8),
            100u);
  std::vector<std::uint8_t> raw(kMetadataEntryBytes);
  f_.compute_mem.Read(layout.MetaSlotAddr(0, 0), raw);
  const auto meta = RequestMetadata::ParseBytes(raw);
  EXPECT_EQ(meta.req_addr, layout.DataRingAddr(0));
  EXPECT_EQ(meta.resp_addr, 0x100000u + 0x3000u);
}

TEST_F(ClientTest, MetaRingFullFailsUntilEngineAdvances) {
  RunClient([&]() -> sim::Task<void> {
    auto& ctx = client_->thread(0);
    for (int i = 0; i < 8; ++i) {
      auto id = co_await ctx.AsyncRead(*thread_, kRegion, 0, kHeap, 8);
      EXPECT_TRUE(id.has_value());
    }
    // 9th: metadata ring (8 slots) is full.
    auto id = co_await ctx.AsyncRead(*thread_, kRegion, 0, kHeap, 8);
    EXPECT_FALSE(id.has_value());
    EXPECT_EQ(ctx.issue_failures(), 1u);
    // Engine consumes 4 entries and completes those reads.
    WriteRed(0, 4, 0, 4);
    id = co_await ctx.AsyncRead(*thread_, kRegion, 0, kHeap, 8);
    EXPECT_TRUE(id.has_value());
  });
}

TEST_F(ClientTest, PollWaitReturnsCompletionsAndCopiesData) {
  const auto& layout = client_->descriptor().layout;
  std::vector<ReqId> done;
  RunClient([&]() -> sim::Task<void> {
    auto& ctx = client_->thread(0);
    auto id = co_await ctx.AsyncRead(*thread_, kRegion, 0x2000, kHeap, 64);
    EXPECT_TRUE(id.has_value());
    const PollId poll = ctx.PollCreate();
    ctx.PollAdd(poll, *id);
    // Nothing complete yet.
    auto none = co_await ctx.PollWait(*thread_, poll, 1, /*timeout=*/1000);
    EXPECT_TRUE(none.empty());
    // Engine delivers the payload into the response ring, then publishes.
    std::vector<std::uint8_t> payload(64, 0xCD);
    f_.compute_mem.Write(layout.RespRingAddr(0), payload);
    WriteRed(0, 1, 0, 1);
    done = co_await ctx.PollWait(*thread_, poll, 1, Micros(100));
  });
  EXPECT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].seq(), 1u);
  std::vector<std::uint8_t> out(64);
  f_.compute_mem.Read(kHeap, out);
  EXPECT_EQ(out, std::vector<std::uint8_t>(64, 0xCD));
}

TEST_F(ClientTest, PollWaitTimeoutZeroIsSingleCheck) {
  RunClient([&]() -> sim::Task<void> {
    auto& ctx = client_->thread(0);
    const PollId poll = ctx.PollCreate();
    const Nanos before = f_.sim.Now();
    auto none = co_await ctx.PollWait(*thread_, poll, 4, 0);
    EXPECT_TRUE(none.empty());
    // Only the check cost elapsed, no polling loop.
    EXPECT_LT(f_.sim.Now() - before, 500);
  });
}

TEST_F(ClientTest, PollRemoveDropsRequest) {
  RunClient([&]() -> sim::Task<void> {
    auto& ctx = client_->thread(0);
    auto a = co_await ctx.AsyncRead(*thread_, kRegion, 0, kHeap, 8);
    auto b = co_await ctx.AsyncRead(*thread_, kRegion, 8, kHeap + 8, 8);
    const PollId poll = ctx.PollCreate();
    ctx.PollAdd(poll, *a);
    ctx.PollAdd(poll, *b);
    ctx.PollRemove(poll, *a);
    WriteRed(0, 2, 0, 2);
    auto done = co_await ctx.PollWait(*thread_, poll, 4, Micros(10));
    EXPECT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], *b);
  });
}

TEST_F(ClientTest, RespRingWrapPadsToContiguous) {
  // resp ring is 4096B; a 3000B read then a 2000B read: the second must be
  // padded to start at ring offset 0 — after the first is retired.
  const auto& layout = client_->descriptor().layout;
  RunClient([&]() -> sim::Task<void> {
    auto& ctx = client_->thread(0);
    auto a = co_await ctx.AsyncRead(*thread_, kRegion, 0, kHeap, 3000);
    EXPECT_TRUE(a.has_value());
    // Complete it so the ring head can advance past it on reconcile.
    std::vector<std::uint8_t> p1(3000, 1);
    f_.compute_mem.Write(layout.RespRingAddr(0), p1);
    WriteRed(0, 1, 0, 1);
    const PollId poll = ctx.PollCreate();
    ctx.PollAdd(poll, *a);
    auto done = co_await ctx.PollWait(*thread_, poll, 1, Micros(10));
    EXPECT_EQ(done.size(), 1u);
    // Second read would straddle the physical end (offset 3000 + 2000 >
    // 4096) → reservation is padded to offset 0.
    auto b = co_await ctx.AsyncRead(*thread_, kRegion, 0, kHeap + 4096, 2000);
    EXPECT_TRUE(b.has_value());
    std::vector<std::uint8_t> raw(kMetadataEntryBytes);
    f_.compute_mem.Read(layout.MetaSlotAddr(0, 1), raw);
    EXPECT_EQ(RequestMetadata::ParseBytes(raw).resp_addr,
              layout.RespRingAddr(0));  // wrapped to the start
  });
}

TEST_F(ClientTest, ThreadsAreIndependent) {
  RunClient([&]() -> sim::Task<void> {
    auto a = co_await client_->thread(0).AsyncRead(*thread_, kRegion, 0,
                                                   kHeap, 8);
    auto b = co_await client_->thread(1).AsyncRead(*thread_, kRegion, 0,
                                                   kHeap + 8, 8);
    EXPECT_EQ(a->thread(), 0);
    EXPECT_EQ(b->thread(), 1);
    EXPECT_EQ(a->seq(), 1u);
    EXPECT_EQ(b->seq(), 1u);  // per-thread sequences
  });
}

TEST_F(ClientTest, IssueChargesCowbirdPostNotVerbs) {
  RunClient([&]() -> sim::Task<void> {
    (void)co_await client_->thread(0).AsyncRead(*thread_, kRegion, 0, kHeap,
                                                8);
  });
  rdma::CostModel costs;
  EXPECT_EQ(thread_->TimeIn(sim::CpuCategory::kCommunication),
            costs.cowbird_post);
  EXPECT_LT(thread_->TimeIn(sim::CpuCategory::kCommunication),
            costs.PostTotal() / 5);
}

}  // namespace
}  // namespace cowbird::core
