// Tests for the convenience API (implicit notification groups, select
// semantics) and the pool-side region allocator.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/convenience.h"
#include "core/region_allocator.h"
#include "fabric_fixture.h"
#include "spot/agent.h"
#include "spot/setup.h"

namespace cowbird::core {
namespace {

using cowbird::testing::TestFabric;

constexpr std::uint64_t kPoolBase = 0x100000;
constexpr std::uint64_t kHeap = 0x4000000;

// ---------------------------------------------------------------------------
// RegionAllocator
// ---------------------------------------------------------------------------

TEST(RegionAllocator, AllocateReleaseCoalesce) {
  TestFabric f;
  RegionAllocator pool(f.memory_dev, kPoolBase, MiB(1));

  auto a = pool.Allocate(1, KiB(256));
  auto b = pool.Allocate(2, KiB(256));
  auto c = pool.Allocate(3, KiB(256));
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->remote_base, kPoolBase);
  EXPECT_EQ(b->remote_base, kPoolBase + KiB(256));
  EXPECT_EQ(pool.allocated(), KiB(768));
  EXPECT_EQ(a->rkey, pool.rkey());

  // Release the middle: fragment count grows.
  pool.Release(*b);
  EXPECT_EQ(pool.fragments(), 2u);
  // A request larger than any fragment fails even though total free fits.
  EXPECT_FALSE(pool.Allocate(4, KiB(512)).has_value());
  // Release neighbours: everything coalesces back into one extent.
  pool.Release(*a);
  pool.Release(*c);
  EXPECT_EQ(pool.fragments(), 1u);
  EXPECT_EQ(pool.allocated(), 0u);
  auto big = pool.Allocate(5, MiB(1));
  EXPECT_TRUE(big.has_value());
}

TEST(RegionAllocator, ExhaustionReturnsNullopt) {
  TestFabric f;
  RegionAllocator pool(f.memory_dev, kPoolBase, KiB(128));
  EXPECT_TRUE(pool.Allocate(1, KiB(128)).has_value());
  EXPECT_FALSE(pool.Allocate(2, 64).has_value());
}

TEST(RegionAllocator, AllocatedRegionServesRdma) {
  // End-to-end: a region carved by the allocator is directly usable as a
  // Cowbird region (the rkey resolves on the memory node).
  TestFabric f;
  sim::Machine spot_machine(f.sim, 1);
  RegionAllocator pool(f.memory_dev, kPoolBase, MiB(8));
  auto region = pool.Allocate(1, MiB(1));
  ASSERT_TRUE(region.has_value());

  CowbirdClient::Config cc;
  cc.layout.base = 0x10000;
  cc.layout.threads = 1;
  CowbirdClient client(f.compute_dev, cc);
  client.RegisterRegion(*region);

  spot::SpotAgent agent(f.spot_dev, spot_machine, spot::SpotAgent::Config{});
  rdma::Device* memories[] = {&f.memory_dev};
  auto conn = spot::ConnectSpotEngine(f.spot_dev, f.compute_dev, memories);
  agent.AddInstance(client.descriptor(), conn.to_compute, conn.compute_cq,
                    conn.to_memory, conn.memory_cqs);
  agent.Start();

  std::vector<std::uint8_t> data(64, 0x5C);
  f.memory_mem.Write(region->remote_base + 128, data);

  sim::SimThread thread(f.compute_machine, "app");
  bool ok = false;
  f.sim.Spawn([](TestFabric& ff, CowbirdClient& cl, sim::SimThread& thr,
                 bool& out) -> sim::Task<void> {
    ImplicitGroup group(cl.thread(0));
    out = co_await group.ReadSync(thr, 1, 128, kHeap, 64);
    ff.sim.Halt();
  }(f, client, thread, ok));
  f.sim.Run();
  EXPECT_TRUE(ok);
  std::vector<std::uint8_t> out(64);
  f.compute_mem.Read(kHeap, out);
  EXPECT_EQ(out, data);
}

// ---------------------------------------------------------------------------
// ImplicitGroup / select semantics
// ---------------------------------------------------------------------------

class ConvenienceTest : public ::testing::Test {
 public:
  ConvenienceTest() : spot_machine_(f_.sim, 1) {
    pool_mr_ = f_.memory_dev.RegisterMemory(kPoolBase, MiB(16));
    CowbirdClient::Config cc;
    cc.layout.base = 0x10000;
    cc.layout.threads = 1;
    client_ = std::make_unique<CowbirdClient>(f_.compute_dev, cc);
    client_->RegisterRegion(RegionInfo{1, TestFabric::kMemoryId, kPoolBase,
                                       pool_mr_->rkey, MiB(16)});
    agent_ = std::make_unique<spot::SpotAgent>(f_.spot_dev, spot_machine_,
                                               spot::SpotAgent::Config{});
    rdma::Device* memories[] = {&f_.memory_dev};
    auto conn = spot::ConnectSpotEngine(f_.spot_dev, f_.compute_dev,
                                        memories);
    agent_->AddInstance(client_->descriptor(), conn.to_compute,
                        conn.compute_cq, conn.to_memory, conn.memory_cqs);
    agent_->Start();
  }

  TestFabric f_;
  sim::Machine spot_machine_;
  const rdma::MemoryRegion* pool_mr_;
  std::unique_ptr<CowbirdClient> client_;
  std::unique_ptr<spot::SpotAgent> agent_;
};

TEST_F(ConvenienceTest, SelectReturnsCompletionsOneByOne) {
  sim::SimThread thread(f_.compute_machine, "app");
  int selected = 0;
  f_.sim.Spawn([](ConvenienceTest& t, sim::SimThread& thr,
                  int& count) -> sim::Task<void> {
    ImplicitGroup group(t.client_->thread(0));
    for (int i = 0; i < 5; ++i) {
      auto id = co_await group.Read(thr, 1, i * 256, kHeap + i * 256, 64);
      EXPECT_TRUE(id.has_value());
    }
    EXPECT_EQ(group.outstanding(), 5);
    while (count < 5) {
      auto done = co_await group.Select(thr, Millis(5));
      if (done.has_value()) ++count;
    }
    EXPECT_EQ(group.outstanding(), 0);
    t.f_.sim.Halt();
  }(*this, thread, selected));
  f_.sim.Run();
  EXPECT_EQ(selected, 5);
}

TEST_F(ConvenienceTest, SelectTimesOutWhenNothingPending) {
  sim::SimThread thread(f_.compute_machine, "app");
  bool timed_out = false;
  f_.sim.Spawn([](ConvenienceTest& t, sim::SimThread& thr,
                  bool& out) -> sim::Task<void> {
    ImplicitGroup group(t.client_->thread(0));
    const Nanos before = t.f_.sim.Now();
    auto done = co_await group.Select(thr, Micros(50));
    out = !done.has_value() && t.f_.sim.Now() >= before + Micros(50);
    t.f_.sim.Halt();
  }(*this, thread, timed_out));
  f_.sim.Run();
  EXPECT_TRUE(timed_out);
}

TEST_F(ConvenienceTest, WaitForSpecificRequestSkipsOthers) {
  sim::SimThread thread(f_.compute_machine, "app");
  bool ok = false;
  f_.sim.Spawn([](ConvenienceTest& t, sim::SimThread& thr,
                  bool& out) -> sim::Task<void> {
    ImplicitGroup group(t.client_->thread(0));
    (void)co_await group.Read(thr, 1, 0, kHeap, 64);
    (void)co_await group.Read(thr, 1, 256, kHeap + 256, 64);
    auto last = co_await group.Read(thr, 1, 512, kHeap + 512, 64);
    EXPECT_TRUE(last.has_value());
    // Waiting for the LAST request implies the first two were harvested
    // along the way (per-type FIFO completion).
    out = co_await group.WaitFor(thr, *last, Millis(5));
    t.f_.sim.Halt();
  }(*this, thread, ok));
  f_.sim.Run();
  EXPECT_TRUE(ok);
}

TEST_F(ConvenienceTest, ReadSyncMovesRealBytes) {
  std::vector<std::uint8_t> data(200);
  Rng rng(5);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
  f_.memory_mem.Write(kPoolBase + 0x3000, data);

  sim::SimThread thread(f_.compute_machine, "app");
  bool ok = false;
  f_.sim.Spawn([](ConvenienceTest& t, sim::SimThread& thr,
                  bool& out) -> sim::Task<void> {
    ImplicitGroup group(t.client_->thread(0));
    out = co_await group.ReadSync(thr, 1, 0x3000, kHeap, 200);
    t.f_.sim.Halt();
  }(*this, thread, ok));
  f_.sim.Run();
  ASSERT_TRUE(ok);
  std::vector<std::uint8_t> out(200);
  f_.compute_mem.Read(kHeap, out);
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace cowbird::core
