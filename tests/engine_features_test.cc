// Coverage for engine features outside the core data path: multiple
// instances per spot agent, multiple memory regions per instance, and the
// adaptive probe ramp-up in both engines.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/client.h"
#include "fabric_fixture.h"
#include "p4/engine.h"
#include "spot/agent.h"
#include "spot/setup.h"

namespace cowbird {
namespace {

using core::CowbirdClient;
using core::ReqId;
using cowbird::testing::TestFabric;

constexpr std::uint64_t kPoolBase = 0x100000;
constexpr std::uint64_t kHeap = 0x4000000;
constexpr net::NodeId kSwitchId = 100;

std::vector<std::uint8_t> Pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
  return data;
}

// One read through a client/region, waiting for completion.
sim::Task<std::vector<std::uint8_t>> ReadVia(TestFabric& f,
                                             CowbirdClient& client,
                                             sim::SimThread& thread,
                                             std::uint16_t region,
                                             std::uint64_t offset,
                                             std::uint32_t len,
                                             std::uint64_t dest) {
  auto& ctx = client.thread(0);
  std::optional<ReqId> id;
  while (!(id = co_await ctx.AsyncRead(thread, region, offset, dest, len))) {
    co_await thread.Idle(Micros(5));
  }
  const core::PollId poll = ctx.PollCreate();
  ctx.PollAdd(poll, *id);
  while ((co_await ctx.PollWait(thread, poll, 1, Millis(5))).empty()) {
  }
  std::vector<std::uint8_t> out(len);
  f.compute_mem.Read(dest, out);
  co_return out;
}

TEST(SpotMultiInstance, TwoClientsOneAgent) {
  TestFabric f;
  sim::Machine spot_machine(f.sim, 1);
  const auto* pool_mr = f.memory_dev.RegisterMemory(kPoolBase, MiB(64));

  spot::SpotAgent agent(f.spot_dev, spot_machine, spot::SpotAgent::Config{});
  std::vector<std::unique_ptr<CowbirdClient>> clients;
  for (int i = 0; i < 2; ++i) {
    CowbirdClient::Config cc;
    cc.layout.base = 0x10000 + static_cast<std::uint64_t>(i) * MiB(8);
    cc.layout.threads = 1;
    clients.push_back(std::make_unique<CowbirdClient>(f.compute_dev, cc));
    clients.back()->RegisterRegion(core::RegionInfo{
        1, TestFabric::kMemoryId, kPoolBase, pool_mr->rkey, MiB(64)});
    rdma::Device* memories[] = {&f.memory_dev};
    auto conn = spot::ConnectSpotEngine(f.spot_dev, f.compute_dev, memories);
    agent.AddInstance(clients.back()->descriptor(), conn.to_compute,
                      conn.compute_cq, conn.to_memory, conn.memory_cqs);
  }
  agent.Start();

  const auto d0 = Pattern(128, 1);
  const auto d1 = Pattern(128, 2);
  f.memory_mem.Write(kPoolBase + 0x1000, d0);
  f.memory_mem.Write(kPoolBase + 0x2000, d1);

  sim::SimThread thread(f.compute_machine, "app");
  int done = 0;
  for (int i = 0; i < 2; ++i) {
    f.sim.Spawn([](TestFabric& ff, CowbirdClient& cl, sim::SimThread& thr,
                   std::uint64_t off, std::uint64_t dest, int& count)
                    -> sim::Task<void> {
      (void)co_await ReadVia(ff, cl, thr, 1, off, 128, dest);
      if (++count == 2) ff.sim.Halt();
    }(f, *clients[i], thread, 0x1000 + i * 0x1000ull, kHeap + i * 4096,
      done));
  }
  f.sim.Run();
  ASSERT_EQ(done, 2);
  std::vector<std::uint8_t> out0(128), out1(128);
  f.compute_mem.Read(kHeap, out0);
  f.compute_mem.Read(kHeap + 4096, out1);
  EXPECT_EQ(out0, d0);
  EXPECT_EQ(out1, d1);
  EXPECT_EQ(agent.ops_completed(), 2u);
}

TEST(MultiRegion, TwoRegionsOneInstance) {
  TestFabric f;
  sim::Machine spot_machine(f.sim, 1);
  const auto* mr_a = f.memory_dev.RegisterMemory(kPoolBase, MiB(16));
  const auto* mr_b = f.memory_dev.RegisterMemory(0x4000000, MiB(16));

  CowbirdClient::Config cc;
  cc.layout.base = 0x10000;
  cc.layout.threads = 1;
  CowbirdClient client(f.compute_dev, cc);
  client.RegisterRegion(core::RegionInfo{1, TestFabric::kMemoryId, kPoolBase,
                                         mr_a->rkey, MiB(16)});
  client.RegisterRegion(core::RegionInfo{2, TestFabric::kMemoryId, 0x4000000,
                                         mr_b->rkey, MiB(16)});

  spot::SpotAgent agent(f.spot_dev, spot_machine, spot::SpotAgent::Config{});
  rdma::Device* memories[] = {&f.memory_dev};
  auto conn = spot::ConnectSpotEngine(f.spot_dev, f.compute_dev, memories);
  agent.AddInstance(client.descriptor(), conn.to_compute, conn.compute_cq,
                    conn.to_memory, conn.memory_cqs);
  agent.Start();

  const auto da = Pattern(100, 3);
  const auto db = Pattern(100, 4);
  f.memory_mem.Write(kPoolBase + 64, da);
  f.memory_mem.Write(0x4000000 + 64, db);

  sim::SimThread thread(f.compute_machine, "app");
  f.sim.Spawn([](TestFabric& ff, CowbirdClient& cl,
                 sim::SimThread& thr) -> sim::Task<void> {
    auto a = co_await ReadVia(ff, cl, thr, 1, 64, 100, kHeap);
    auto b = co_await ReadVia(ff, cl, thr, 2, 64, 100, kHeap + 4096);
    (void)a;
    (void)b;
    ff.sim.Halt();
  }(f, client, thread));
  f.sim.Run();

  std::vector<std::uint8_t> oa(100), ob(100);
  f.compute_mem.Read(kHeap, oa);
  f.compute_mem.Read(kHeap + 4096, ob);
  EXPECT_EQ(oa, da);
  EXPECT_EQ(ob, db);
}

TEST(AdaptiveProbe, SpotBacksOffWhenIdleAndSnapsBack) {
  TestFabric f;
  sim::Machine spot_machine(f.sim, 1);
  const auto* pool_mr = f.memory_dev.RegisterMemory(kPoolBase, MiB(16));
  CowbirdClient::Config cc;
  cc.layout.base = 0x10000;
  cc.layout.threads = 1;
  CowbirdClient client(f.compute_dev, cc);
  client.RegisterRegion(core::RegionInfo{1, TestFabric::kMemoryId, kPoolBase,
                                         pool_mr->rkey, MiB(16)});
  spot::SpotAgent::Config ac;
  ac.adaptive_probe = true;
  ac.probe_interval = Micros(2);
  ac.probe_interval_max = Micros(64);
  spot::SpotAgent agent(f.spot_dev, spot_machine, ac);
  rdma::Device* memories[] = {&f.memory_dev};
  auto conn = spot::ConnectSpotEngine(f.spot_dev, f.compute_dev, memories);
  agent.AddInstance(client.descriptor(), conn.to_compute, conn.compute_cq,
                    conn.to_memory, conn.memory_cqs);
  agent.Start();

  // Idle for a while: the interval must ramp to the maximum.
  f.sim.RunFor(Millis(1));
  EXPECT_EQ(agent.current_probe_interval(), Micros(64));
  const auto idle_probes = agent.probes_sent();
  // Far fewer probes than the 500 a fixed 2 us interval would have sent.
  EXPECT_LT(idle_probes, 60u);

  // Activity: reads must still complete, and once the probe loop wakes and
  // observes the activity, the interval snaps back toward the baseline.
  sim::SimThread thread(f.compute_machine, "app");
  f.sim.Spawn([](TestFabric& ff, CowbirdClient& cl,
                 sim::SimThread& thr) -> sim::Task<void> {
    for (int i = 0; i < 4; ++i) {
      (void)co_await ReadVia(ff, cl, thr, 1, i * 64, 64, kHeap);
    }
    ff.sim.Halt();
  }(f, client, thread));
  f.sim.Run();
  // Allow a couple of idle doublings between the last activity and Halt.
  EXPECT_LE(agent.current_probe_interval(), Micros(16));
  EXPECT_EQ(agent.ops_completed(), 4u);
}

TEST(AdaptiveProbe, P4BacksOffWhenIdle) {
  TestFabric f;
  const auto* pool_mr = f.memory_dev.RegisterMemory(kPoolBase, MiB(16));
  CowbirdClient::Config cc;
  cc.layout.base = 0x10000;
  cc.layout.threads = 1;
  CowbirdClient client(f.compute_dev, cc);
  client.RegisterRegion(core::RegionInfo{1, TestFabric::kMemoryId, kPoolBase,
                                         pool_mr->rkey, MiB(16)});
  p4::CowbirdP4Engine::Config ec;
  ec.switch_node_id = kSwitchId;
  ec.adaptive_probe = true;
  ec.probe_interval_max = Micros(64);
  p4::CowbirdP4Engine engine(f.sw, ec);
  auto conn = p4::ConnectP4Engine(engine, kSwitchId, f.compute_dev,
                                  f.memory_dev, 0x800);
  engine.AddInstance(client.descriptor(), conn);
  engine.Start();

  f.sim.RunFor(Millis(1));
  const auto idle_probes = engine.probes_sent();
  EXPECT_LT(idle_probes, 60u);  // ~500 at the fixed 2 us rate

  // A request still completes despite the ramped-down interval.
  sim::SimThread thread(f.compute_machine, "app");
  f.sim.Spawn([](TestFabric& ff, CowbirdClient& cl,
                 sim::SimThread& thr) -> sim::Task<void> {
    (void)co_await ReadVia(ff, cl, thr, 1, 0, 64, kHeap);
    ff.sim.Halt();
  }(f, client, thread));
  f.sim.Run();
  EXPECT_EQ(engine.ops_completed(), 1u);
}

}  // namespace
}  // namespace cowbird
