// Shared test topology: compute node + memory pool + (optional) spot node
// hanging off one switch, with RDMA devices attached — the testbed of
// Section 7 in miniature.
#pragma once

#include <memory>

#include "common/sparse_memory.h"
#include "net/switch.h"
#include "rdma/device.h"
#include "rdma/params.h"
#include "rdma/qp.h"
#include "sim/simulation.h"
#include "sim/thread.h"

namespace cowbird::testing {

struct TestFabric {
  static constexpr net::NodeId kComputeId = 1;
  static constexpr net::NodeId kMemoryId = 2;
  static constexpr net::NodeId kSpotId = 3;

  sim::Simulation sim;
  rdma::FabricParams fabric;
  rdma::NicConfig nic_config;
  net::Switch sw;
  net::HostNic compute_nic;
  net::HostNic memory_nic;
  net::HostNic spot_nic;
  SparseMemory compute_mem;
  SparseMemory memory_mem;
  SparseMemory spot_mem;
  rdma::Device compute_dev;
  rdma::Device memory_dev;
  rdma::Device spot_dev;
  sim::Machine compute_machine;

  explicit TestFabric(int compute_cores = 16)
      : sw(sim,
           net::Switch::Config{.pipeline_latency = fabric.switch_pipeline}),
        compute_nic(sim, kComputeId, fabric.host_link,
                    fabric.link_propagation),
        memory_nic(sim, kMemoryId, fabric.host_link, fabric.link_propagation),
        spot_nic(sim, kSpotId, fabric.host_link, fabric.link_propagation),
        compute_dev(compute_nic, compute_mem, nic_config),
        memory_dev(memory_nic, memory_mem, nic_config),
        spot_dev(spot_nic, spot_mem, nic_config),
        compute_machine(sim, compute_cores) {
    compute_nic.ConnectTo(sw);
    memory_nic.ConnectTo(sw);
    spot_nic.ConnectTo(sw);
  }
};

}  // namespace cowbird::testing
