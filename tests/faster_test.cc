#include <gtest/gtest.h>

#include "faster/devices_rdma.h"
#include "faster/idevice.h"
#include "faster/store.h"
#include "faster/ycsb.h"
#include "workload/testbed.h"

namespace cowbird::faster {
namespace {

using workload::Testbed;

constexpr std::uint64_t kDeviceBase = 0x3000'0000;
constexpr std::uint64_t kDest = 0x8000'0000;

class StoreTest : public ::testing::Test {
 public:
  StoreTest() {
    FasterStore::Config sc;
    sc.index_buckets = 1 << 12;
    sc.memory_budget = KiB(64);
    sc.spill_page = KiB(32);
    store = std::make_unique<FasterStore>(bed.compute_mem, sc);
    device = std::make_unique<LocalMemoryDevice>(bed.compute_mem, kDeviceBase,
                                                 rdma::CostModel{});
    thread = std::make_unique<sim::SimThread>(bed.compute_machine, "t");
  }

  std::vector<std::uint8_t> Value(std::uint64_t key, std::uint32_t len) {
    std::vector<std::uint8_t> v(len, static_cast<std::uint8_t>(key));
    for (int i = 0; i < 8; ++i) v[i] = static_cast<std::uint8_t>(key >> (8 * i));
    return v;
  }

  Testbed bed;
  std::unique_ptr<FasterStore> store;
  std::unique_ptr<IDevice> device;
  std::unique_ptr<sim::SimThread> thread;
};

TEST_F(StoreTest, UpsertThenReadInMemory) {
  bool ok = false;
  bed.sim.Spawn([](StoreTest& t, bool& out) -> sim::Task<void> {
    co_await t.store->Upsert(*t.thread, *t.device, 42, t.Value(42, 64));
    auto status = co_await t.store->Read(*t.thread, *t.device, 42, kDest,
                                         [] {});
    out = status == FasterStore::ReadStatus::kLocal;
  }(*this, ok));
  bed.sim.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(bed.compute_mem.ReadValue<std::uint64_t>(kDest), 42u);
  EXPECT_EQ(bed.compute_mem.ReadValue<std::uint64_t>(kDest + 16), 42u);
}

TEST_F(StoreTest, MissingKeyNotFound) {
  auto status = FasterStore::ReadStatus::kLocal;
  bed.sim.Spawn([](StoreTest& t,
                   FasterStore::ReadStatus& out) -> sim::Task<void> {
    out = co_await t.store->Read(*t.thread, *t.device, 999, kDest, [] {});
  }(*this, status));
  bed.sim.Run();
  EXPECT_EQ(status, FasterStore::ReadStatus::kNotFound);
}

TEST_F(StoreTest, UpdateSupersedesOldValue) {
  bed.sim.Spawn([](StoreTest& t) -> sim::Task<void> {
    co_await t.store->Upsert(*t.thread, *t.device, 7, t.Value(7, 64));
    auto v2 = t.Value(7, 64);
    v2[63] = 0xEE;
    co_await t.store->Upsert(*t.thread, *t.device, 7, v2);
    (void)co_await t.store->Read(*t.thread, *t.device, 7, kDest, [] {});
  }(*this));
  bed.sim.Run();
  std::vector<std::uint8_t> out(80);
  bed.compute_mem.Read(kDest, out);
  EXPECT_EQ(out[16 + 63], 0xEE);
}

TEST_F(StoreTest, SpillsWhenOverBudget) {
  // 64 KiB budget, 80-byte records → spills begin after ~800 upserts.
  bed.sim.Spawn([](StoreTest& t) -> sim::Task<void> {
    for (std::uint64_t k = 0; k < 3000; ++k) {
      co_await t.store->Upsert(*t.thread, *t.device, k, t.Value(k, 64));
    }
  }(*this));
  bed.sim.Run();
  EXPECT_GT(store->spills(), 0u);
  EXPECT_LE(store->InMemoryBytes(), KiB(64));
  EXPECT_EQ(store->size(), 3000u);
}

TEST_F(StoreTest, SpilledRecordsReadBackThroughDevice) {
  int pending_done = 0;
  bed.sim.Spawn([](StoreTest& t, int& done_count) -> sim::Task<void> {
    for (std::uint64_t k = 0; k < 3000; ++k) {
      co_await t.store->Upsert(*t.thread, *t.device, k, t.Value(k, 64));
    }
    // Key 0 was evicted long ago; it must come back via the device.
    auto status = co_await t.store->Read(
        *t.thread, *t.device, 0, kDest, [&done_count] { ++done_count; });
    // LocalMemoryDevice completes inline.
    EXPECT_EQ(status, FasterStore::ReadStatus::kPending);
  }(*this, pending_done));
  bed.sim.Run();
  EXPECT_EQ(pending_done, 1);
  EXPECT_EQ(bed.compute_mem.ReadValue<std::uint64_t>(kDest), 0u);
  // Value embeds the key (0) in its first 8 bytes.
  EXPECT_EQ(bed.compute_mem.ReadValue<std::uint64_t>(kDest + 16), 0u);
}

TEST_F(StoreTest, RecordSizeRounding) {
  FasterStore::Config sc;
  FasterStore s(bed.compute_mem, sc);
  EXPECT_EQ(s.RecordSize(64), 80u);
  EXPECT_EQ(s.RecordSize(8), 24u);
  EXPECT_EQ(s.RecordSize(1), 24u);  // rounded to 8
  EXPECT_EQ(s.RecordSize(512), 528u);
}

// ---------------------------------------------------------------------------
// YCSB end-to-end (miniature Figures 9/10/11)
// ---------------------------------------------------------------------------

YcsbConfig QuickYcsb(Backend b, int threads) {
  YcsbConfig c;
  c.backend = b;
  c.threads = threads;
  c.records = 20'000;
  c.value_size = 64;
  c.memory_fraction = 0.2;
  c.warmup = Micros(200);
  c.measure = Millis(1);
  return c;
}

TEST(Ycsb, AllBackendsVerifyCleanly) {
  for (Backend b : {Backend::kLocal, Backend::kSsd, Backend::kOneSidedSync,
                    Backend::kOneSidedAsync, Backend::kCowbirdSpot,
                    Backend::kCowbirdP4, Backend::kRedy}) {
    const auto r = RunYcsb(QuickYcsb(b, 2));
    EXPECT_EQ(r.verify_failures, 0u) << BackendName(b);
    EXPECT_GT(r.ops, 100u) << BackendName(b);
  }
}

TEST(Ycsb, StorageLayerIsExercised) {
  const auto r = RunYcsb(QuickYcsb(Backend::kCowbirdSpot, 2));
  // The configuration must push a large share of reads to the device
  // (the paper stresses the storage layer).
  EXPECT_GT(r.remote_read_fraction, 0.3);
  EXPECT_GT(r.updates, 0u);
}

TEST(Ycsb, BackendOrderingMatchesFigure9) {
  const double local = RunYcsb(QuickYcsb(Backend::kLocal, 2)).mops;
  const double cowbird = RunYcsb(QuickYcsb(Backend::kCowbirdSpot, 2)).mops;
  const double async = RunYcsb(QuickYcsb(Backend::kOneSidedAsync, 2)).mops;
  const double sync = RunYcsb(QuickYcsb(Backend::kOneSidedSync, 2)).mops;
  const double ssd = RunYcsb(QuickYcsb(Backend::kSsd, 2)).mops;

  // Figure 9 ordering: local ≥ cowbird > async > sync > ssd, with remote
  // memory at least 2.3x faster than SSD.
  EXPECT_GE(local * 1.05, cowbird);
  EXPECT_GT(cowbird, async);
  EXPECT_GT(async, sync);
  EXPECT_GT(sync, ssd * 2.3);
  // Cowbird close to local memory (paper: within 8%; we allow 20% at this
  // miniature scale).
  EXPECT_GT(cowbird, local * 0.7);
}

TEST(Ycsb, CommunicationRatioOrdering) {
  const auto sync = RunYcsb(QuickYcsb(Backend::kOneSidedSync, 2));
  const auto cowbird = RunYcsb(QuickYcsb(Backend::kCowbirdSpot, 2));
  // Figure 10: sync RDMA > 80%% of time in communication; Cowbird < 20%.
  EXPECT_GT(sync.comm_ratio, 0.6);
  EXPECT_LT(cowbird.comm_ratio, 0.25);
}

TEST(Ycsb, P4AndSpotEnginesPerformSimilarly) {
  // Figure 9: "these two approaches achieve similar performance across
  // different workloads and scalability settings."
  const double spot = RunYcsb(QuickYcsb(Backend::kCowbirdSpot, 4)).mops;
  const double p4 = RunYcsb(QuickYcsb(Backend::kCowbirdP4, 4)).mops;
  EXPECT_GT(p4, spot * 0.6);
  EXPECT_LT(p4, spot * 1.7);
}

TEST(Ycsb, RedyLosesToCowbirdAtHighThreadCounts) {
  // Figure 11: with 12 app threads on 16 cores, Redy's 12 pinned I/O
  // threads oversubscribe the machine; Cowbird keeps scaling.
  const double redy = RunYcsb(QuickYcsb(Backend::kRedy, 12)).mops;
  const double cowbird = RunYcsb(QuickYcsb(Backend::kCowbirdSpot, 12)).mops;
  EXPECT_GT(cowbird, redy * 1.2);
}

}  // namespace
}  // namespace cowbird::faster
