// Live region migration under traffic (DESIGN.md §14): the chaos scenario
// that copies the region's hot range to a second memory server and cuts
// the translation entry over mid-run, checked by the same linearizability
// harness as the crash path — under packet faults, engine crashes, incast
// congestion, and domain-split execution.
#include <gtest/gtest.h>

#include "chaos/fault_plan.h"
#include "chaos/runner.h"
#include "workload/scale_workload.h"

namespace cowbird {
namespace {

chaos::ChaosOptions MigratingOptions(chaos::EngineKind engine,
                                     std::uint64_t seed) {
  chaos::ChaosOptions opt = chaos::SweepOptions(engine, seed);
  opt.plan.migrate = true;
  return opt;
}

// Seeds 1-3 layer the migration onto seed-derived mixed fault plans: drop
// + duplicate + reorder + delay on every link, partitions, and an engine
// crash on the odd seeds — so the cutover races both packet loss and a
// crash-migration of the same instance.
TEST(MigrationChaos, CleanCutoverUnderFaultsAndCrashes) {
  for (chaos::EngineKind engine :
       {chaos::EngineKind::kSpot, chaos::EngineKind::kP4}) {
    for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{2},
                               std::uint64_t{3}}) {
      const chaos::ChaosResult r =
          chaos::RunChaos(MigratingOptions(engine, seed));
      EXPECT_TRUE(r.Passed()) << chaos::EngineKindName(engine) << " seed "
                              << seed;
      EXPECT_EQ(r.migrations_executed, 1u)
          << chaos::EngineKindName(engine) << " seed " << seed;
      EXPECT_GT(r.migrate_bytes_copied, 0u);
      if (seed % 2 == 1) {
        EXPECT_GT(r.crashes_executed, 0u);
      }
    }
  }
}

// The copy stream must survive sharing the fabric with an incast: the
// congestion scenario layers finite switch queues + ECN + DCQCN over the
// same seeds.
TEST(MigrationChaos, CleanCutoverDuringIncastCongestion) {
  for (chaos::EngineKind engine :
       {chaos::EngineKind::kSpot, chaos::EngineKind::kP4}) {
    chaos::ChaosOptions opt = MigratingOptions(engine, 2);
    opt.plan.congestion = chaos::CongestionScenario::kIncast;
    const chaos::ChaosResult r = chaos::RunChaos(opt);
    EXPECT_TRUE(r.Passed()) << chaos::EngineKindName(engine);
    EXPECT_EQ(r.migrations_executed, 1u) << chaos::EngineKindName(engine);
  }
}

// Domain-split migrating runs are bit-identical for any worker count: the
// coordinator ticks are global events, so the cutover lands on the same
// virtual-time edge regardless of how many threads drive the domains.
TEST(MigrationChaos, SplitBitIdenticalAcrossWorkerCounts) {
  for (chaos::EngineKind engine :
       {chaos::EngineKind::kSpot, chaos::EngineKind::kP4}) {
    chaos::ChaosOptions opt = MigratingOptions(engine, 3);
    opt.mode = chaos::ExecutionMode::kSplit;
    opt.split_workers = 1;
    const chaos::ChaosResult one = chaos::RunChaos(opt);
    EXPECT_TRUE(one.Passed()) << chaos::EngineKindName(engine);
    EXPECT_EQ(one.migrations_executed, 1u);
    for (const int workers : {2, 4}) {
      opt.split_workers = workers;
      const chaos::ChaosResult many = chaos::RunChaos(opt);
      EXPECT_TRUE(many.Passed())
          << chaos::EngineKindName(engine) << " workers " << workers;
      EXPECT_EQ(many.history.size(), one.history.size());
      EXPECT_EQ(many.reads_checked, one.reads_checked);
      EXPECT_EQ(many.writes_completed, one.writes_completed);
      EXPECT_EQ(many.faults_injected, one.faults_injected);
      EXPECT_EQ(many.crashes_executed, one.crashes_executed);
      EXPECT_EQ(many.migrations_executed, one.migrations_executed);
      EXPECT_EQ(many.migrate_bytes_copied, one.migrate_bytes_copied);
      EXPECT_EQ(many.migrate_dirty_marks, one.migrate_dirty_marks);
    }
  }
}

// A non-migrating plan serializes without the migrate keys — the byte
// contract that keeps pre-migration failure traces replayable — and a
// migrating one round-trips through the trace format.
TEST(MigrationPlan, FaultPlanSerializationRoundTrip) {
  chaos::FaultPlan plain;
  EXPECT_EQ(plain.Serialize().find("migrate"), std::string::npos);

  chaos::FaultPlan plan = chaos::FaultPlan::FromSeed(5, 1);
  plan.migrate = true;
  plan.migrate_start = Micros(123);
  const std::string line = plan.Serialize();
  EXPECT_NE(line.find("migrate=1"), std::string::npos) << line;
  const auto parsed = chaos::FaultPlan::Parse(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  EXPECT_TRUE(parsed->migrate);
  EXPECT_EQ(parsed->migrate_start, Micros(123));
  EXPECT_EQ(parsed->Serialize(), line);
}

// The 16-node fan-in acceptance: 12 clients over 2 memory servers, client
// 0's ClusterPool region live-rebalanced between them mid-run on both
// engines — the cutover completes, post-cutover throughput recovers to
// within 10% of the pre-migration rate, and the run keeps serving
// throughout (non-zero ops in every phase).
TEST(MigrationScale, FanInRebalanceRecoversSteadyState) {
  for (workload::Paradigm paradigm :
       {workload::Paradigm::kCowbird, workload::Paradigm::kCowbirdP4}) {
    workload::ScaleWorkloadConfig cfg;
    cfg.paradigm = paradigm;
    cfg.clients = 12;
    cfg.memory_servers = 2;
    cfg.records = 16'384;
    cfg.measure = Millis(2);
    cfg.migrate = true;
    cfg.migrate_start = Micros(400);
    const workload::ScaleWorkloadResult r =
        workload::RunScaleWorkload(cfg);
    EXPECT_EQ(r.migrations, 1u);
    EXPECT_GE(r.migrate_bytes_copied, cfg.records * cfg.record_size);
    EXPECT_GT(r.mops_before, 0.0);
    EXPECT_GT(r.mops_during, 0.0);
    EXPECT_GE(r.mops_after, 0.9 * r.mops_before);
  }
}

}  // namespace
}  // namespace cowbird
