// Multi-engine sharding: one deployment's instances spread across several
// concurrently running offload engines by an InstanceRegistry, with
// registry-driven migration when an engine is decommissioned.
//
// Two spot agents run on the same harvested node (disjoint staging arenas,
// separate QPs/CQs); two client instances on the compute node are sharded
// one-per-engine. Stopping an engine exports the red-block progress
// snapshot through the registry and the surviving engine resumes the
// instance from it.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/client.h"
#include "fabric_fixture.h"
#include "offload/progress.h"
#include "offload/registry.h"
#include "spot/agent.h"
#include "spot/setup.h"

namespace cowbird::spot {
namespace {

using cowbird::testing::TestFabric;
using core::CowbirdClient;
using core::RegionInfo;
using core::ReqId;

constexpr std::uint64_t kPoolBase = 0x100000;
constexpr std::uint64_t kHeap = 0x4000000;
constexpr std::uint16_t kRegion = 1;

std::vector<std::uint8_t> Pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
  return data;
}

class MultiEngineTest : public ::testing::Test {
 public:
  MultiEngineTest() : machine_a_(f_.sim, 1), machine_b_(f_.sim, 1) {
    pool_mr_ = f_.memory_dev.RegisterMemory(kPoolBase, MiB(64));

    SpotAgent::Config config_a;
    config_a.staging_base = 0x4000'0000;
    SpotAgent::Config config_b;
    config_b.staging_base = 0x8000'0000;
    agent_a_ = std::make_unique<SpotAgent>(f_.spot_dev, machine_a_, config_a);
    agent_b_ = std::make_unique<SpotAgent>(f_.spot_dev, machine_b_, config_b);

    clients_.push_back(MakeClient(0x10000));
    clients_.push_back(MakeClient(0x800000));

    engine_a_ = registry_.AddEngine(BindingFor(*agent_a_, "spot-a"));
    engine_b_ = registry_.AddEngine(BindingFor(*agent_b_, "spot-b"));
    agent_a_->Start();
    agent_b_->Start();
    app_thread_ = std::make_unique<sim::SimThread>(f_.compute_machine, "app");
  }

  std::unique_ptr<CowbirdClient> MakeClient(std::uint64_t layout_base) {
    CowbirdClient::Config config;
    config.layout.base = layout_base;
    config.layout.threads = 1;
    config.layout.meta_slots = 64;
    config.layout.data_capacity = KiB(64);
    config.layout.resp_capacity = KiB(64);
    auto client = std::make_unique<CowbirdClient>(f_.compute_dev, config);
    client->RegisterRegion(RegionInfo{kRegion, TestFabric::kMemoryId,
                                      kPoolBase, pool_mr_->rkey, MiB(64)});
    return client;
  }

  CowbirdClient* ClientFor(std::uint32_t instance_id) {
    for (auto& client : clients_) {
      if (client->descriptor().instance_id == instance_id) {
        return client.get();
      }
    }
    return nullptr;
  }

  // The registry sees every engine through this backend-agnostic binding:
  // attach wires fresh QPs and resumes from the snapshot, detach exports
  // the snapshot and deactivates the instance.
  offload::EngineBinding BindingFor(SpotAgent& agent, std::string name) {
    offload::EngineBinding binding;
    binding.name = std::move(name);
    binding.attach = [this, &agent](std::uint32_t instance_id,
                                    const offload::InstanceProgress* resume) {
      CowbirdClient* client = ClientFor(instance_id);
      if (client == nullptr) return false;
      rdma::Device* memories[] = {&f_.memory_dev};
      auto conn = ConnectSpotEngine(f_.spot_dev, f_.compute_dev, memories);
      agent.AddInstance(client->descriptor(), conn.to_compute,
                        conn.compute_cq, conn.to_memory, conn.memory_cqs,
                        resume);
      return true;
    };
    binding.detach = [&agent](std::uint32_t instance_id) {
      auto snapshot = agent.ExportProgress(instance_id);
      agent.RemoveInstance(instance_id);
      return snapshot;
    };
    return binding;
  }

  // The client's published red block, per thread — the optimistic counters
  // a crash-exported snapshot must be reconciled against at attach time.
  std::vector<offload::ThreadProgress> ReadPublishedProgress(
      const CowbirdClient& client) const {
    std::vector<offload::ThreadProgress> published;
    const auto& layout = client.descriptor().layout;
    std::vector<std::uint8_t> block(core::kRedBlockBytes);
    for (int t = 0; t < layout.threads; ++t) {
      f_.compute_mem.Read(layout.RedAddr(t), block);
      published.push_back(offload::ProgressPublisher::Unpack(block));
    }
    return published;
  }

  // Crash-flavored binding: detach exports mid-flight (no drain) and halts
  // the dead engine's QPs so no zombie retransmission races the survivor.
  // Attach runs after the export — possibly after red writes that were on
  // the wire at export time have landed — so it re-reads the published red
  // block and reconciles before resuming.
  offload::EngineBinding CrashBindingFor(SpotAgent& agent, std::string name) {
    offload::EngineBinding binding;
    binding.name = std::move(name);
    binding.attach = [this, &agent](std::uint32_t instance_id,
                                    const offload::InstanceProgress* resume) {
      CowbirdClient* client = ClientFor(instance_id);
      if (client == nullptr) return false;
      rdma::Device* memories[] = {&f_.memory_dev};
      auto conn = ConnectSpotEngine(f_.spot_dev, f_.compute_dev, memories);
      offload::InstanceProgress reconciled;
      const offload::InstanceProgress* use = resume;
      if (resume != nullptr) {
        reconciled = *resume;
        offload::ReconcileWithPublished(reconciled,
                                        ReadPublishedProgress(*client));
        use = &reconciled;
      }
      agent.AddInstance(client->descriptor(), conn.to_compute,
                        conn.compute_cq, conn.to_memory, conn.memory_cqs,
                        use);
      conn_of_[&agent] = conn;
      return true;
    };
    binding.detach = [this, &agent](std::uint32_t instance_id) {
      auto snapshot = agent.ExportProgress(instance_id);
      agent.RemoveInstance(instance_id);
      auto it = conn_of_.find(&agent);
      if (it != conn_of_.end()) {
        it->second.to_compute->Halt();
        for (auto& [node, qp] : it->second.to_memory) qp->Halt();
        conn_of_.erase(it);
      }
      return snapshot;
    };
    return binding;
  }

  sim::Task<std::vector<std::uint8_t>> ReadAndWait(int client_index,
                                                   std::uint64_t offset,
                                                   std::uint32_t len,
                                                   std::uint64_t dest) {
    auto& ctx = clients_[client_index]->thread(0);
    std::optional<ReqId> id;
    while (!(id = co_await ctx.AsyncRead(*app_thread_, kRegion, offset, dest,
                                         len))) {
      co_await app_thread_->Idle(Micros(5));
    }
    const core::PollId poll = ctx.PollCreate();
    ctx.PollAdd(poll, *id);
    for (;;) {
      auto done = co_await ctx.PollWait(*app_thread_, poll, 1, Millis(5));
      if (!done.empty()) break;
    }
    std::vector<std::uint8_t> out(len);
    f_.compute_mem.Read(dest, out);
    co_return out;
  }

  sim::Task<void> WriteAndWait(int client_index, std::uint64_t src,
                               std::uint64_t off, std::uint32_t len) {
    auto& ctx = clients_[client_index]->thread(0);
    std::optional<ReqId> id;
    while (!(id = co_await ctx.AsyncWrite(*app_thread_, kRegion, src, off,
                                          len))) {
      co_await app_thread_->Idle(Micros(5));
    }
    const core::PollId poll = ctx.PollCreate();
    ctx.PollAdd(poll, *id);
    for (;;) {
      auto done = co_await ctx.PollWait(*app_thread_, poll, 1, Millis(5));
      if (!done.empty()) break;
    }
  }

  TestFabric f_;
  sim::Machine machine_a_;
  sim::Machine machine_b_;
  const rdma::MemoryRegion* pool_mr_ = nullptr;
  std::unique_ptr<SpotAgent> agent_a_;
  std::unique_ptr<SpotAgent> agent_b_;
  std::vector<std::unique_ptr<CowbirdClient>> clients_;
  offload::InstanceRegistry registry_;
  offload::EngineId engine_a_ = offload::kNoEngine;
  offload::EngineId engine_b_ = offload::kNoEngine;
  std::map<SpotAgent*, SpotConnection> conn_of_;
  std::unique_ptr<sim::SimThread> app_thread_;
};

TEST_F(MultiEngineTest, DisjointShardsServedConcurrently) {
  const std::uint32_t id0 = clients_[0]->descriptor().instance_id;
  const std::uint32_t id1 = clients_[1]->descriptor().instance_id;

  // Least-loaded placement spreads the two instances one-per-engine.
  const auto placed0 = registry_.AddInstance(id0);
  const auto placed1 = registry_.AddInstance(id1);
  ASSERT_NE(placed0, offload::kNoEngine);
  ASSERT_NE(placed1, offload::kNoEngine);
  EXPECT_NE(placed0, placed1);
  EXPECT_EQ(registry_.InstancesOn(placed0), std::vector<std::uint32_t>{id0});
  EXPECT_EQ(registry_.InstancesOn(placed1), std::vector<std::uint32_t>{id1});

  const auto d0 = Pattern(256, 1);
  const auto d1 = Pattern(512, 2);
  f_.memory_mem.Write(kPoolBase + 0x2000, d0);
  f_.compute_mem.Write(kHeap, d1);

  int finished = 0;
  f_.sim.Spawn([](MultiEngineTest& t, const std::vector<std::uint8_t>& want,
                  int& count) -> sim::Task<void> {
    auto got = co_await t.ReadAndWait(0, 0x2000, 256, kHeap + 0x10000);
    EXPECT_EQ(got, want);
    if (++count == 2) t.f_.sim.Halt();
  }(*this, d0, finished));
  f_.sim.Spawn([](MultiEngineTest& t, const std::vector<std::uint8_t>& want,
                  int& count) -> sim::Task<void> {
    co_await t.WriteAndWait(1, kHeap, 0x8000, 512);
    auto got = co_await t.ReadAndWait(1, 0x8000, 512, kHeap + 0x20000);
    EXPECT_EQ(got, want);
    if (++count == 2) t.f_.sim.Halt();
  }(*this, d1, finished));
  f_.sim.Run();

  // Both engines did real work for their own shard.
  EXPECT_GT(agent_a_->probes_sent(), 0u);
  EXPECT_GT(agent_b_->probes_sent(), 0u);
  EXPECT_GE(agent_a_->ops_completed(), 1u);
  EXPECT_GE(agent_b_->ops_completed(), 1u);
}

TEST_F(MultiEngineTest, StoppedEngineMigratesInstanceToSurvivor) {
  const std::uint32_t id0 = clients_[0]->descriptor().instance_id;
  const std::uint32_t id1 = clients_[1]->descriptor().instance_id;
  ASSERT_EQ(registry_.AddInstance(id0, engine_a_), engine_a_);
  ASSERT_EQ(registry_.AddInstance(id1, engine_b_), engine_b_);

  f_.sim.Spawn([](MultiEngineTest& t, std::uint32_t inst0)
                   -> sim::Task<void> {
    // Phase 1: instance 0 does work through engine A.
    for (int i = 0; i < 8; ++i) {
      const auto data = Pattern(200, 100 + i);
      t.f_.compute_mem.Write(kHeap, data);
      co_await t.WriteAndWait(0, kHeap, i * 1024, 200);
      auto got = co_await t.ReadAndWait(0, i * 1024, 200, kHeap + 0x10000);
      EXPECT_EQ(got, data) << "pre-migration iteration " << i;
    }
    const auto a_ops = t.agent_a_->ops_completed();
    EXPECT_GT(a_ops, 0u);

    // Decommission engine A gracefully: stop probing, drain, migrate.
    t.agent_a_->StopProbing();
    while (!t.agent_a_->InstanceDrained(inst0)) {
      co_await t.app_thread_->Idle(Micros(10));
    }
    const auto migrated = t.registry_.StopEngine(t.engine_a_);
    EXPECT_EQ(migrated, std::vector<std::uint32_t>{inst0});
    EXPECT_EQ(t.registry_.EngineOf(inst0), t.engine_b_);
    EXPECT_EQ(t.registry_.live_engines(), 1u);

    // Phase 2: the same instance keeps working, now served by engine B
    // resuming from the exported red-block snapshot.
    const auto b_ops = t.agent_b_->ops_completed();
    for (int i = 0; i < 8; ++i) {
      const auto data = Pattern(200, 200 + i);
      t.f_.compute_mem.Write(kHeap, data);
      co_await t.WriteAndWait(0, kHeap, 0x40000 + i * 1024, 200);
      auto got = co_await t.ReadAndWait(0, 0x40000 + i * 1024, 200,
                                        kHeap + 0x10000);
      EXPECT_EQ(got, data) << "post-migration iteration " << i;
    }
    EXPECT_EQ(t.agent_a_->ops_completed(), a_ops);  // A stayed stopped
    EXPECT_GT(t.agent_b_->ops_completed(), b_ops);  // B took over
    t.f_.sim.Halt();
  }(*this, id0));
  f_.sim.Run();
}

TEST_F(MultiEngineTest, ExplicitReassignMovesLiveInstance) {
  const std::uint32_t id0 = clients_[0]->descriptor().instance_id;
  ASSERT_EQ(registry_.AddInstance(id0, engine_a_), engine_a_);

  f_.sim.Spawn([](MultiEngineTest& t, std::uint32_t inst0)
                   -> sim::Task<void> {
    const auto data = Pattern(300, 7);
    t.f_.compute_mem.Write(kHeap, data);
    co_await t.WriteAndWait(0, kHeap, 0x3000, 300);

    // Drain A before moving (lossless handoff), then Reassign.
    while (!t.agent_a_->InstanceDrained(inst0)) {
      co_await t.app_thread_->Idle(Micros(10));
    }
    EXPECT_TRUE(t.registry_.Reassign(inst0, t.engine_b_));
    EXPECT_EQ(t.registry_.EngineOf(inst0), t.engine_b_);

    auto got = co_await t.ReadAndWait(0, 0x3000, 300, kHeap + 0x10000);
    EXPECT_EQ(got, data);
    t.f_.sim.Halt();
  }(*this, id0));
  f_.sim.Run();
  EXPECT_GE(agent_b_->ops_completed(), 1u);
}

TEST_F(MultiEngineTest, MidFlightCrashMigratesWithoutLostOrDuplicatedWork) {
  // Unlike the graceful decommission above, the engine dies with an
  // operation in flight: no StopProbing, no InstanceDrained wait. The
  // conservative crash export plus the attach-time reconcile against the
  // published red block (which may have advanced between ExportProgress and
  // the survivor's attach) must neither lose the in-flight write nor apply
  // any completed one twice.
  const std::uint32_t inst = clients_[0]->descriptor().instance_id;
  offload::InstanceRegistry crash_reg;
  const auto crash_a = crash_reg.AddEngine(CrashBindingFor(*agent_a_, "crash-a"));
  const auto crash_b = crash_reg.AddEngine(CrashBindingFor(*agent_b_, "crash-b"));
  ASSERT_EQ(crash_reg.AddInstance(inst, crash_a), crash_a);

  f_.sim.Spawn([](MultiEngineTest& t, offload::InstanceRegistry& reg,
                  offload::EngineId ea, offload::EngineId eb,
                  std::uint32_t inst0) -> sim::Task<void> {
    // Durable pre-crash history: six completed writes.
    for (int i = 0; i < 6; ++i) {
      const auto data = Pattern(200, 300 + i);
      t.f_.compute_mem.Write(kHeap, data);
      co_await t.WriteAndWait(0, kHeap, i * 1024, 200);
    }
    const auto a_ops = t.agent_a_->ops_completed();
    EXPECT_GT(a_ops, 0u);

    // Post one more write, let A fetch its metadata but not finish it,
    // then kill A. The client has freed the metadata slot by then, so the
    // op survives only through the snapshot's pending list (or, if A had
    // not consumed it yet, through the survivor re-parsing the rings).
    auto& ctx = t.clients_[0]->thread(0);
    const auto inflight = Pattern(200, 399);
    t.f_.compute_mem.Write(kHeap + 0x1000, inflight);
    std::optional<ReqId> id;
    while (!(id = co_await ctx.AsyncWrite(*t.app_thread_, kRegion,
                                          kHeap + 0x1000, 6 * 1024, 200))) {
      co_await t.app_thread_->Idle(Micros(5));
    }
    co_await t.app_thread_->Idle(Micros(3));
    const auto migrated = reg.StopEngine(ea);
    EXPECT_EQ(migrated, std::vector<std::uint32_t>{inst0});
    EXPECT_EQ(reg.EngineOf(inst0), eb);
    EXPECT_EQ(reg.live_engines(), 1u);

    // The in-flight write still completes, exactly once, on the survivor.
    const core::PollId poll = ctx.PollCreate();
    ctx.PollAdd(poll, *id);
    for (;;) {
      auto done = co_await ctx.PollWait(*t.app_thread_, poll, 1, Millis(5));
      if (!done.empty()) break;
    }
    EXPECT_EQ(t.agent_a_->ops_completed(), a_ops);  // A is dead

    // Nothing lost: every pre-crash write and the in-flight one read back
    // intact through the survivor.
    for (int i = 0; i < 6; ++i) {
      auto got = co_await t.ReadAndWait(0, i * 1024, 200, kHeap + 0x10000);
      EXPECT_EQ(got, Pattern(200, 300 + i)) << "pre-crash write " << i;
    }
    auto got = co_await t.ReadAndWait(0, 6 * 1024, 200, kHeap + 0x10000);
    EXPECT_EQ(got, inflight);

    // Nothing duplicated: the rings stay in lockstep with the survivor's
    // resumed counters, so fresh traffic runs at full health.
    for (int i = 0; i < 4; ++i) {
      const auto data = Pattern(200, 500 + i);
      t.f_.compute_mem.Write(kHeap, data);
      co_await t.WriteAndWait(0, kHeap, 0x40000 + i * 1024, 200);
      auto back = co_await t.ReadAndWait(0, 0x40000 + i * 1024, 200,
                                         kHeap + 0x12000);
      EXPECT_EQ(back, data) << "post-crash iteration " << i;
    }
    t.f_.sim.Halt();
  }(*this, crash_reg, crash_a, crash_b, inst));
  f_.sim.Run();
  EXPECT_GE(agent_b_->ops_completed(), 1u);
}

}  // namespace
}  // namespace cowbird::spot
