#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/flow.h"
#include "net/link.h"
#include "net/packet.h"
#include "net/switch.h"
#include "sim/simulation.h"

namespace cowbird::net {
namespace {

Packet TestPacket(NodeId src, NodeId dst, std::size_t payload,
                  Priority prio = Priority::kRdma) {
  return MakeUdpPacket(src, dst, payload, prio);
}

TEST(Headers, EthernetRoundTrip) {
  EthernetHeader h;
  h.dst_mac = 0x020000000007ull;
  h.src_mac = 0x020000000003ull;
  h.ether_type = kEtherTypeIpv4;
  std::vector<std::uint8_t> buf(kEthernetHeaderBytes);
  h.Serialize(buf);
  const auto parsed = EthernetHeader::Parse(buf);
  EXPECT_EQ(parsed.dst_mac, h.dst_mac);
  EXPECT_EQ(parsed.src_mac, h.src_mac);
  EXPECT_EQ(parsed.ether_type, h.ether_type);
}

TEST(Headers, Ipv4RoundTrip) {
  Ipv4Header h;
  h.dscp = 2;
  h.total_length = 1500;
  h.src_ip = 0x0A000001;
  h.dst_ip = 0x0A000002;
  std::vector<std::uint8_t> buf(kIpv4HeaderBytes);
  h.Serialize(buf);
  const auto parsed = Ipv4Header::Parse(buf);
  EXPECT_EQ(parsed.dscp, h.dscp);
  EXPECT_EQ(parsed.total_length, h.total_length);
  EXPECT_EQ(parsed.src_ip, h.src_ip);
  EXPECT_EQ(parsed.dst_ip, h.dst_ip);
  EXPECT_EQ(parsed.protocol, kIpProtoUdp);
}

TEST(Headers, UdpRoundTripAndPacketLayout) {
  Packet p = TestPacket(3, 7, 100);
  EXPECT_EQ(p.bytes.size(), kL2L3L4Bytes + 100);
  const auto udp = UdpHeader::Parse(
      std::span<const std::uint8_t>(p.bytes)
          .subspan(kEthernetHeaderBytes + kIpv4HeaderBytes));
  EXPECT_EQ(udp.dst_port, kRoceUdpPort);
  EXPECT_EQ(udp.length, kUdpHeaderBytes + 100);
  const auto ip = Ipv4Header::Parse(p.L3());
  EXPECT_EQ(ip.dst_ip, 0x0A000007u);
}

TEST(Link, DeliversAfterSerializationPlusPropagation) {
  sim::Simulation sim;
  Link link(sim, BitRate::Gbps(100), /*propagation=*/500);
  Nanos delivered_at = -1;
  link.set_receiver([&](Packet) { delivered_at = sim.Now(); });
  Packet p = TestPacket(1, 2, 1226 - kL2L3L4Bytes - kWireExtraBytes);
  // Wire bytes = 1226 - ... adjust: just compute expected from WireBytes.
  const Nanos tx = BitRate::Gbps(100).TransmitTime(p.WireBytes());
  link.Send(std::move(p));
  sim.Run();
  EXPECT_EQ(delivered_at, tx + 500);
}

TEST(Link, BackToBackPacketsPipeline) {
  sim::Simulation sim;
  Link link(sim, BitRate::Gbps(10), /*propagation=*/1000);
  std::vector<Nanos> deliveries;
  link.set_receiver([&](Packet) { deliveries.push_back(sim.Now()); });
  Packet a = TestPacket(1, 2, 58);  // 100B frame + 24B overhead
  Packet b = TestPacket(1, 2, 58);
  const Nanos tx = BitRate::Gbps(10).TransmitTime(a.WireBytes());
  link.Send(std::move(a));
  link.Send(std::move(b));
  sim.Run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], tx + 1000);
  EXPECT_EQ(deliveries[1], 2 * tx + 1000);  // serialized, then pipelined
}

TEST(Link, DropFilterDropsSelectively) {
  sim::Simulation sim;
  Link link(sim, BitRate::Gbps(100), 10);
  int received = 0;
  link.set_receiver([&](Packet) { ++received; });
  int countdown = 1;
  link.set_drop_filter([&](const Packet&) { return countdown-- == 0; });
  link.Send(TestPacket(1, 2, 64));  // dropped (countdown 1→0? no: 1st call returns countdown==0? countdown=1 → false, then 0)
  link.Send(TestPacket(1, 2, 64));  // dropped
  link.Send(TestPacket(1, 2, 64));  // delivered (countdown negative)
  sim.Run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(link.packets_dropped(), 1u);
  EXPECT_EQ(link.packets_delivered(), 2u);
}

TEST(Link, FaultFilterDropIsCountedInBothBuckets) {
  sim::Simulation sim;
  Link link(sim, BitRate::Gbps(100), 10);
  int received = 0;
  link.set_receiver([&](Packet) { ++received; });
  int seen = 0;
  link.set_fault_filter([&](const Packet&) {
    return FaultAction{.drop = ++seen == 2};
  });
  for (int i = 0; i < 3; ++i) link.Send(TestPacket(1, 2, 64));
  sim.Run();
  EXPECT_EQ(received, 2);
  // A fault-injected drop shows up both as a generic drop and as an
  // attributable injected fault.
  EXPECT_EQ(link.packets_dropped(), 1u);
  EXPECT_EQ(link.faults_dropped(), 1u);
  EXPECT_EQ(link.packets_delivered(), 2u);
}

TEST(Link, FaultFilterDuplicateDeliversExtraCopies) {
  sim::Simulation sim;
  Link link(sim, BitRate::Gbps(100), 10);
  int received = 0;
  link.set_receiver([&](Packet) { ++received; });
  int seen = 0;
  link.set_fault_filter([&](const Packet&) {
    return FaultAction{.duplicate = (++seen == 1) ? 2 : 0};
  });
  link.Send(TestPacket(1, 2, 64));  // delivered three times
  link.Send(TestPacket(1, 2, 64));  // delivered once
  sim.Run();
  EXPECT_EQ(received, 4);
  // The counter tracks extra copies (the injector's unit of accounting),
  // and the copies bypass the filter — a fault is never compounded.
  EXPECT_EQ(link.faults_duplicated(), 2u);
  EXPECT_EQ(link.packets_dropped(), 0u);
  EXPECT_EQ(link.packets_delivered(), 4u);
}

TEST(Link, FaultFilterDelayAndReorderLandInDistinctBuckets) {
  sim::Simulation sim;
  Link link(sim, BitRate::Gbps(100), /*propagation=*/10);
  std::vector<Nanos> deliveries;
  link.set_receiver([&](Packet) { deliveries.push_back(sim.Now()); });
  int seen = 0;
  link.set_fault_filter([&](const Packet&) {
    // Packet 1: plain delay. Packet 2: reordering hold — long enough for
    // packet 3 to overtake it.
    switch (++seen) {
      case 1:
        return FaultAction{.delay = 100};
      case 2:
        return FaultAction{.delay = 10000, .reorder = true};
      default:
        return FaultAction{};
    }
  });
  for (int i = 0; i < 3; ++i) link.Send(TestPacket(1, 2, 64));
  sim.Run();
  ASSERT_EQ(deliveries.size(), 3u);
  // The held packet arrived last even though it was sent second.
  EXPECT_GT(deliveries.back(), deliveries[1]);
  // A reordering hold is a reorder fault, not a delay fault: each
  // FaultAction lands in exactly one latency bucket.
  EXPECT_EQ(link.faults_delayed(), 1u);
  EXPECT_EQ(link.faults_reordered(), 1u);
  EXPECT_EQ(link.faults_dropped(), 0u);
  EXPECT_EQ(link.packets_delivered(), 3u);
}

TEST(Link, IdleCallbackFiresAfterDrain) {
  sim::Simulation sim;
  Link link(sim, BitRate::Gbps(100), 10);
  int idle_count = 0;
  link.set_idle_callback([&] { ++idle_count; });
  link.Send(TestPacket(1, 2, 64));
  link.Send(TestPacket(1, 2, 64));
  sim.Run();
  EXPECT_EQ(idle_count, 1);  // only when the queue fully drains
}

class StarFixture : public ::testing::Test {
 protected:
  static constexpr Nanos kProp = 250;

  StarFixture()
      : sw_(sim_, Switch::Config{}),
        host_a_(sim_, 1, BitRate::Gbps(100), kProp),
        host_b_(sim_, 2, BitRate::Gbps(100), kProp),
        host_c_(sim_, 3, BitRate::Gbps(25), kProp) {
    host_a_.ConnectTo(sw_);
    host_b_.ConnectTo(sw_);
    host_c_.ConnectTo(sw_);
  }

  sim::Simulation sim_;
  Switch sw_;
  HostNic host_a_, host_b_, host_c_;
};

TEST_F(StarFixture, ForwardsBetweenHosts) {
  int received_b = 0, received_a = 0;
  host_b_.SetDefaultReceiver([&](Packet p) {
    ++received_b;
    EXPECT_EQ(p.src, 1u);
  });
  host_a_.SetDefaultReceiver([&](Packet) { ++received_a; });
  host_a_.Send(TestPacket(1, 2, 128));
  host_a_.Send(TestPacket(1, 2, 128));
  sim_.Run();
  EXPECT_EQ(received_b, 2);
  EXPECT_EQ(received_a, 0);
  EXPECT_EQ(sw_.forwarded(), 2u);
}

TEST_F(StarFixture, UnroutableIsDropped) {
  int received = 0;
  host_b_.SetDefaultReceiver([&](Packet) { ++received; });
  host_a_.Send(TestPacket(1, 99, 128));
  sim_.Run();
  EXPECT_EQ(received, 0);
}

TEST_F(StarFixture, StrictPriorityServesHighFirst) {
  // Saturate the 25 Gbps link to host C with bulk packets, then inject a
  // control packet: it must jump the queue.
  std::vector<Priority> arrival_order;
  host_c_.SetDefaultReceiver(
      [&](Packet p) { arrival_order.push_back(p.priority); });
  for (int i = 0; i < 20; ++i) {
    host_a_.Send(TestPacket(1, 3, 1400, Priority::kBulk));
  }
  // The control packet leaves host B slightly later but arrives at the
  // switch while bulk packets are still queued for C's egress.
  sim_.ScheduleAt(2000, [&] {
    host_b_.Send(TestPacket(2, 3, 64, Priority::kControl));
  });
  sim_.Run();
  ASSERT_EQ(arrival_order.size(), 21u);
  // The control packet must not be last; it should overtake most of the
  // bulk backlog.
  std::size_t control_pos = 0;
  for (std::size_t i = 0; i < arrival_order.size(); ++i) {
    if (arrival_order[i] == Priority::kControl) control_pos = i;
  }
  EXPECT_LT(control_pos, 8u);
}

TEST_F(StarFixture, EgressTailDropWhenFull) {
  sim::Simulation sim;
  Switch tiny(sim, Switch::Config{.egress_queue_capacity = 3000,
                                  .pipeline_latency = 100});
  HostNic a(sim, 1, BitRate::Gbps(100), 100);
  HostNic b(sim, 2, BitRate::Mbps(100), 100);  // slow egress
  a.ConnectTo(tiny);
  b.ConnectTo(tiny);
  int received = 0;
  b.SetDefaultReceiver([&](Packet) { ++received; });
  for (int i = 0; i < 50; ++i) a.Send(TestPacket(1, 2, 1400));
  sim.Run();
  EXPECT_GT(tiny.egress_drops(b.switch_port()), 0u);
  EXPECT_LT(received, 50);
  EXPECT_GT(received, 0);
}

TEST_F(StarFixture, GreedyFlowSaturatesBottleneck) {
  GreedyFlow flow(host_a_, host_c_, 0, GreedyFlow::Config{});
  flow.Start();
  sim_.RunFor(Millis(2));
  // Host C's link is 25 Gbps; payload goodput should be close to line rate
  // minus header overhead (~4% for 1400B payloads + headers + wire extra).
  EXPECT_GT(flow.GoodputGbps(), 22.0);
  EXPECT_LT(flow.GoodputGbps(), 25.0);
}

TEST_F(StarFixture, TwoFlowsShareBottleneckFairly) {
  GreedyFlow f1(host_a_, host_c_, 0, GreedyFlow::Config{});
  GreedyFlow f2(host_b_, host_c_, 1, GreedyFlow::Config{});
  f1.Start();
  f2.Start();
  sim_.RunFor(Millis(4));
  const double total = f1.GoodputGbps() + f2.GoodputGbps();
  EXPECT_GT(total, 22.0);
  // Round-robin-ish fairness within the same priority class.
  EXPECT_NEAR(f1.GoodputGbps(), f2.GoodputGbps(), 3.0);
}

// --- shared-fabric congestion: finite queues, ECN, PFC -------------------
//
// The congestion fixtures all push 1442-byte frames (1400B payload) from a
// 100 Gbps host into a slow egress, so arrivals outrun the drain by orders
// of magnitude and the queue depths at each arrival are exactly computable:
// the first packet drains straight to the link, every later one stacks up.

constexpr std::size_t kCongPayload = 1400;
constexpr Bytes kCongFrame = kL2L3L4Bytes + kCongPayload;  // 1442 buffered

Packet EctPacket(NodeId src, NodeId dst) {
  Packet p = TestPacket(src, dst, kCongPayload);
  p.SetEcnBits(kEcnEct0);
  return p;
}

// Five back-to-back frames find the egress queue at depths 0 (drained to
// the link immediately), 0, 1×, 2×, and 3× kCongFrame bytes. Marking is
// on-arrival against the pre-enqueue depth, so the threshold boundary is
// pinned by where the first CE shows up.
std::vector<std::uint8_t> EcnBitsSeen(Bytes ecn_threshold, bool ect) {
  sim::Simulation sim;
  Switch sw(sim, Switch::Config{.pipeline_latency = 100,
                                .ecn_threshold = ecn_threshold});
  HostNic a(sim, 1, BitRate::Gbps(100), 100);
  HostNic b(sim, 2, BitRate::Mbps(10), 100);
  a.ConnectTo(sw);
  b.ConnectTo(sw);
  std::vector<std::uint8_t> seen;
  b.SetDefaultReceiver([&](Packet p) { seen.push_back(p.EcnBits()); });
  for (int i = 0; i < 5; ++i) {
    a.Send(ect ? EctPacket(1, 2) : TestPacket(1, 2, kCongPayload));
  }
  sim.Run();
  return seen;
}

TEST(SwitchEcn, MarksThePacketThatFindsTheQueueExactlyAtThreshold) {
  // Threshold == 2 frames: the 4th packet arrives to find exactly that
  // depth and must be the first one marked (>= comparison).
  const auto seen = EcnBitsSeen(2 * kCongFrame, /*ect=*/true);
  ASSERT_EQ(seen.size(), 5u);
  const std::vector<std::uint8_t> want = {kEcnEct0, kEcnEct0, kEcnEct0,
                                          kEcnCe, kEcnCe};
  EXPECT_EQ(seen, want);
}

TEST(SwitchEcn, OneByteBelowThresholdIsNotMarked) {
  // One byte above the 4th packet's arrival depth: it squeaks under, only
  // the 5th is marked.
  const auto seen = EcnBitsSeen(2 * kCongFrame + 1, /*ect=*/true);
  ASSERT_EQ(seen.size(), 5u);
  const std::vector<std::uint8_t> want = {kEcnEct0, kEcnEct0, kEcnEct0,
                                          kEcnEct0, kEcnCe};
  EXPECT_EQ(seen, want);
}

TEST(SwitchEcn, NonEctPacketsAreNeverMarked) {
  const auto seen = EcnBitsSeen(kCongFrame, /*ect=*/false);
  ASSERT_EQ(seen.size(), 5u);
  for (const std::uint8_t bits : seen) EXPECT_EQ(bits, kEcnNotCapable);
}

TEST(SwitchQueue, OverflowAuditsDropsAndPreservesFifoOrder) {
  // Capacity = 2 frames + slack. Burst 1: packet 0 drains to the link,
  // 1 and 2 queue, 3–5 tail-drop. Burst 2 lands after packets 1 and 2
  // transmitted (the queue is empty again but the link is busy with 2):
  // 6 and 7 queue, 8 and 9 tail-drop. Survivors stay in arrival order and
  // every packet is accounted for as delivered or dropped.
  sim::Simulation sim;
  Switch sw(sim, Switch::Config{.egress_queue_capacity = 2 * kCongFrame + 100,
                                .pipeline_latency = 100});
  HostNic a(sim, 1, BitRate::Gbps(100), 100);
  HostNic b(sim, 2, BitRate::Mbps(10), 100);
  a.ConnectTo(sw);
  b.ConnectTo(sw);
  std::vector<int> seen;
  b.SetDefaultReceiver(
      [&](Packet p) { seen.push_back(p.L4Payload()[0]); });
  auto send_seq = [&](int seq) {
    Packet p = TestPacket(1, 2, kCongPayload);
    p.MutableL4Payload()[0] = static_cast<std::uint8_t>(seq);
    a.Send(std::move(p));
  };
  for (int i = 0; i < 6; ++i) send_seq(i);
  sim.ScheduleAt(Millis(3), [&] {
    for (int i = 6; i < 10; ++i) send_seq(i);
  });
  sim.Run();
  const std::vector<int> want = {0, 1, 2, 6, 7};
  EXPECT_EQ(seen, want);
  EXPECT_EQ(sw.egress_drops(b.switch_port()), 5u);
  EXPECT_EQ(sw.egress_drops(a.switch_port()), 0u);
  EXPECT_EQ(sw.total_drops(), 5u);
  EXPECT_EQ(seen.size() + sw.total_drops(), 10u);
}

TEST(SwitchPfc, PauseResumeRoundTripIsLossless) {
  // 60 frames from a 100G host into a 10G egress. The switch pauses the
  // sender's ingress when its buffered bytes cross the pause threshold, the
  // host NIC honors the pause at its MAC (uplink data classes held), and an
  // explicit resume arrives once the backlog drains — so the burst survives
  // a queue that it would otherwise overflow.
  sim::Simulation sim;
  Switch sw(sim, Switch::Config{.egress_queue_capacity = 16 * kCongFrame,
                                .pipeline_latency = 100,
                                .pfc_enabled = true,
                                .pfc_pause_threshold = 7 * kCongFrame,
                                .pfc_resume_threshold = 3 * kCongFrame});
  HostNic a(sim, 1, BitRate::Gbps(100), 100);
  HostNic b(sim, 2, BitRate::Gbps(10), 100);
  a.ConnectTo(sw);
  b.ConnectTo(sw);
  int received = 0;
  b.SetDefaultReceiver([&](Packet) { ++received; });
  for (int i = 0; i < 60; ++i) a.Send(TestPacket(1, 2, kCongPayload));
  sim.Run();
  EXPECT_EQ(received, 60);
  EXPECT_EQ(sw.total_drops(), 0u);
  EXPECT_GE(sw.pfc_pauses_sent(), 1u);
  EXPECT_GE(sw.pfc_resumes_sent(), 1u);
  // The host's uplink saw the pause frames and actually idled.
  EXPECT_GE(a.uplink().pauses_received(), 1u);
  EXPECT_GT(a.uplink().paused_ns(), 0u);
  EXPECT_FALSE(a.uplink().data_paused());  // resumed by the end
}

TEST(Link, PauseHoldsDataWhileControlKeepsFlowing) {
  sim::Simulation sim;
  Link link(sim, BitRate::Gbps(100), /*propagation=*/10);
  std::vector<std::pair<Priority, Nanos>> deliveries;
  link.set_receiver(
      [&](Packet p) { deliveries.emplace_back(p.priority, sim.Now()); });
  link.PauseData(Micros(5));
  link.Send(TestPacket(1, 2, 64));                      // held by the pause
  link.Send(TestPacket(1, 2, 64, Priority::kControl));  // flows through
  sim.Run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].first, Priority::kControl);
  EXPECT_LT(deliveries[0].second, Micros(1));
  EXPECT_EQ(deliveries[1].first, Priority::kRdma);
  EXPECT_GE(deliveries[1].second, Micros(5));  // released at pause expiry
  EXPECT_EQ(link.pauses_received(), 1u);
  EXPECT_EQ(link.paused_ns(), static_cast<std::uint64_t>(Micros(5)));
}

TEST(SwitchProcessor, CustomProcessorCanRewriteAndMultiply) {
  sim::Simulation sim;
  Switch sw(sim, Switch::Config{});
  HostNic a(sim, 1, BitRate::Gbps(100), 100);
  HostNic b(sim, 2, BitRate::Gbps(100), 100);
  a.ConnectTo(sw);
  b.ConnectTo(sw);

  // A processor that duplicates every packet.
  class Duplicator : public PacketProcessor {
   public:
    void Process(Switch& s, int, Packet p,
                 std::vector<ForwardAction>& out) override {
      const int port = s.RouteFor(p.dst);
      out.push_back({port, p});
      out.push_back({port, std::move(p)});
    }
  };
  Duplicator dup;
  sw.SetProcessor(&dup);

  int received = 0;
  b.SetDefaultReceiver([&](Packet) { ++received; });
  a.Send(TestPacket(1, 2, 64));
  sim.Run();
  EXPECT_EQ(received, 2);
}

TEST(SwitchProcessor, InjectGeneratedEntersPipeline) {
  sim::Simulation sim;
  Switch sw(sim, Switch::Config{});
  HostNic a(sim, 1, BitRate::Gbps(100), 100);
  a.ConnectTo(sw);
  int received = 0;
  a.SetDefaultReceiver([&](Packet) { ++received; });
  sw.InjectGenerated(0, TestPacket(99, 1, 64, Priority::kProbe));
  sim.Run();
  EXPECT_EQ(received, 1);
}

}  // namespace
}  // namespace cowbird::net
