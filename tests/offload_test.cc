// Unit tests for the shared offload-engine core: hazard policies, probe
// scheduling, red-block packing, and the instance registry.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "offload/hazard_tracker.h"
#include "offload/probe_scheduler.h"
#include "offload/progress.h"
#include "offload/registry.h"

namespace cowbird::offload {
namespace {

constexpr std::uint64_t kTop = std::numeric_limits<std::uint64_t>::max();

// ---------------------------------------------------------------- hazards

TEST(RangesOverlap, BasicAndAdjacent) {
  const HazardRange w{1, 100, 100};  // [100, 200)
  EXPECT_TRUE(RangesOverlap(w, HazardRange{1, 150, 10}));
  EXPECT_TRUE(RangesOverlap(w, HazardRange{1, 199, 50}));
  EXPECT_TRUE(RangesOverlap(w, HazardRange{1, 50, 51}));
  // Adjacent-but-not-overlapping: half-open ranges sharing an endpoint.
  EXPECT_FALSE(RangesOverlap(w, HazardRange{1, 0, 100}));
  EXPECT_FALSE(RangesOverlap(w, HazardRange{1, 200, 100}));
}

TEST(RangesOverlap, DifferentRegionsNeverOverlap) {
  EXPECT_FALSE(RangesOverlap(HazardRange{1, 100, 100},
                             HazardRange{2, 100, 100}));
}

TEST(RangesOverlap, ZeroLengthIsEmpty) {
  const HazardRange w{1, 100, 100};
  EXPECT_FALSE(RangesOverlap(w, HazardRange{1, 150, 0}));
  EXPECT_FALSE(RangesOverlap(HazardRange{1, 150, 0}, w));
  EXPECT_FALSE(RangesOverlap(HazardRange{1, 0, 0}, HazardRange{1, 0, 0}));
}

TEST(RangesOverlap, WrappingRanges) {
  // [2^64-10, 2^64) ∪ [0, 10): a ring-wrap range.
  const HazardRange wrap{1, kTop - 9, 20};
  EXPECT_TRUE(RangesOverlap(wrap, HazardRange{1, 5, 2}));        // low piece
  EXPECT_TRUE(RangesOverlap(wrap, HazardRange{1, kTop - 5, 2}));  // high piece
  EXPECT_TRUE(RangesOverlap(wrap, HazardRange{1, kTop, 1}));      // top byte
  EXPECT_FALSE(RangesOverlap(wrap, HazardRange{1, 10, 100}));     // the gap
  // Two wrapping ranges always share the top byte.
  EXPECT_TRUE(RangesOverlap(wrap, HazardRange{1, kTop - 100, 200}));
}

TEST(HazardTracker, ExactRangeBlocksOnlyOverlappingReads) {
  HazardTracker t(HazardTracker::Policy::kExactRange);
  const auto ticket = t.AdmitWrite(HazardRange{1, 0x1000, 0x100});
  EXPECT_TRUE(t.ReadBlocked(HazardRange{1, 0x1080, 8}));
  EXPECT_FALSE(t.ReadBlocked(HazardRange{1, 0x2000, 8}));
  EXPECT_FALSE(t.ReadBlocked(HazardRange{2, 0x1080, 8}));  // other region
  EXPECT_FALSE(t.ReadBlocked(HazardRange{1, 0x1080, 0}));  // zero-length read
  t.RetireWrite(ticket);
  EXPECT_FALSE(t.ReadBlocked(HazardRange{1, 0x1080, 8}));
  EXPECT_EQ(t.active_writes(), 0u);
}

TEST(HazardTracker, FenceBlocksEveryReadWhileAnyWriteInFlight) {
  HazardTracker t(HazardTracker::Policy::kFenceAllReads);
  const auto ticket = t.AdmitWrite(HazardRange{1, 0x1000, 0x100});
  // The fence ignores ranges entirely (Section 5.3: the RMT pipeline cannot
  // range-compare), so even disjoint and zero-length reads pause.
  EXPECT_TRUE(t.ReadBlocked(HazardRange{1, 0x9000, 8}));
  EXPECT_TRUE(t.ReadBlocked(HazardRange{2, 0x1000, 8}));
  EXPECT_TRUE(t.ReadBlocked(HazardRange{1, 0, 0}));
  t.RetireWrite(ticket);
  EXPECT_FALSE(t.ReadBlocked(HazardRange{1, 0x1000, 8}));
}

TEST(HazardTracker, ReadsOnlyStallOnEarlierWrites) {
  for (const auto policy : {HazardTracker::Policy::kFenceAllReads,
                            HazardTracker::Policy::kExactRange}) {
    HazardTracker t(policy);
    const auto frontier = t.ReadFrontier();  // read probed now
    t.AdmitWrite(HazardRange{1, 0x1000, 0x100});  // write probed later
    EXPECT_FALSE(t.ReadBlocked(HazardRange{1, 0x1000, 8}, frontier))
        << "policy " << static_cast<int>(policy);
    // A read probed after the write does stall.
    EXPECT_TRUE(t.ReadBlocked(HazardRange{1, 0x1000, 8}, t.ReadFrontier()));
  }
}

TEST(HazardTracker, FenceStallsSupersetOfExactRange) {
  // Property (randomized): whatever the write set, any read the exact
  // policy stalls is also stalled by the fence policy.
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    HazardTracker fence(HazardTracker::Policy::kFenceAllReads);
    HazardTracker exact(HazardTracker::Policy::kExactRange);
    const int writes = static_cast<int>(rng.Below(4));
    for (int w = 0; w < writes; ++w) {
      const HazardRange range{static_cast<std::uint16_t>(rng.Below(2)),
                              rng.Below(0x1000),
                              rng.Below(0x200)};
      fence.AdmitWrite(range);
      exact.AdmitWrite(range);
    }
    const HazardRange read{static_cast<std::uint16_t>(rng.Below(2)),
                           rng.Below(0x1000), rng.Below(0x200)};
    if (exact.ReadBlocked(read)) {
      EXPECT_TRUE(fence.ReadBlocked(read))
          << "trial " << trial << ": exact stalled a read the fence passed";
    }
  }
}

// -------------------------------------------------------------- scheduler

TEST(ProbeScheduler, NonAdaptiveIntervalIsFixed) {
  ProbeScheduler s(ProbeScheduler::Config{Micros(2), false, Micros(64),
                                          ProbeSelection::kRoundRobin});
  s.OnProbeOutcome(false);
  s.OnProbeOutcome(false);
  EXPECT_EQ(s.current_interval(), Micros(2));
}

TEST(ProbeScheduler, AdaptiveRampDoublesAndSnapsBack) {
  ProbeScheduler s(ProbeScheduler::Config{Micros(2), true, Micros(16),
                                          ProbeSelection::kRoundRobin});
  EXPECT_EQ(s.current_interval(), Micros(2));
  s.OnProbeOutcome(false);
  EXPECT_EQ(s.current_interval(), Micros(4));
  s.OnProbeOutcome(false);
  EXPECT_EQ(s.current_interval(), Micros(8));
  s.OnProbeOutcome(false);
  s.OnProbeOutcome(false);  // capped at interval_max
  EXPECT_EQ(s.current_interval(), Micros(16));
  s.OnProbeOutcome(true);  // activity: snap back to the baseline
  EXPECT_EQ(s.current_interval(), Micros(2));
}

TEST(ProbeScheduler, RoundRobinCyclesAndMayReturnIneligible) {
  ProbeScheduler s(ProbeScheduler::Config{Micros(2), false, Micros(64),
                                          ProbeSelection::kRoundRobin});
  std::vector<ProbeScheduler::Candidate> c(3);
  c[1].eligible = false;  // probe in flight: the TDM slot is still consumed
  EXPECT_EQ(s.PickNext(c), 0u);
  EXPECT_EQ(s.PickNext(c), 1u);  // caller checks eligibility and skips
  EXPECT_EQ(s.PickNext(c), 2u);
  EXPECT_EQ(s.PickNext(c), 0u);
}

TEST(ProbeScheduler, ActivityWeightedPrefersBusiestThreeOfFourTicks) {
  ProbeScheduler s(ProbeScheduler::Config{Micros(2), false, Micros(64),
                                          ProbeSelection::kActivityWeighted});
  std::vector<ProbeScheduler::Candidate> c(3);
  c[2].activity_credit = 100;
  EXPECT_EQ(s.PickNext(c), 0u);  // tick 0: round-robin pass
  EXPECT_EQ(s.PickNext(c), 2u);  // ticks 1..3: busiest instance
  EXPECT_EQ(s.PickNext(c), 2u);
  EXPECT_EQ(s.PickNext(c), 2u);
  EXPECT_EQ(s.PickNext(c), 1u);  // tick 4: round-robin slot 4 % 3
}

TEST(ProbeScheduler, WeightedFallsBackToRoundRobinWhenNoneEligible) {
  ProbeScheduler s(ProbeScheduler::Config{Micros(2), false, Micros(64),
                                          ProbeSelection::kActivityWeighted});
  std::vector<ProbeScheduler::Candidate> c(2);
  c[0].eligible = false;
  c[1].eligible = false;
  EXPECT_EQ(s.PickNext(c), 0u);  // tick 0 rr
  EXPECT_EQ(s.PickNext(c), 1u);  // tick 1: weighted finds nobody, rr slot
  EXPECT_EQ(s.PickNext(std::span<const ProbeScheduler::Candidate>{}),
            ProbeScheduler::kNone);
}

TEST(ProbeScheduler, DecayCredit) {
  EXPECT_EQ(ProbeScheduler::DecayCredit(100), 75u);
  EXPECT_EQ(ProbeScheduler::DecayCredit(4), 3u);
  EXPECT_EQ(ProbeScheduler::DecayCredit(0), 0u);
}

// --------------------------------------------------------------- progress

TEST(ProgressPublisher, PackUnpackRoundTrips) {
  ThreadProgress p;
  p.meta_head = 0x0102030405060708;
  p.data_head = 11;
  p.resp_tail = 22;
  p.write_progress = 33;
  p.read_progress = 44;
  std::array<std::uint8_t, ProgressPublisher::kBlockBytes> block{};
  ProgressPublisher::Pack(p, block);
  const ThreadProgress q = ProgressPublisher::Unpack(block);
  EXPECT_EQ(q.meta_head, p.meta_head);
  EXPECT_EQ(q.data_head, p.data_head);
  EXPECT_EQ(q.resp_tail, p.resp_tail);
  EXPECT_EQ(q.write_progress, p.write_progress);
  EXPECT_EQ(q.read_progress, p.read_progress);
}

TEST(ProgressPublisher, WireLayoutIsLittleEndianU64s) {
  ThreadProgress p;
  p.meta_head = 0x0102030405060708;
  p.read_progress = 0xAABB;
  std::array<std::uint8_t, ProgressPublisher::kBlockBytes> block{};
  ProgressPublisher::Pack(p, block);
  EXPECT_EQ(block[0], 0x08);  // least-significant byte first
  EXPECT_EQ(block[7], 0x01);
  EXPECT_EQ(block[32], 0xBB);
  EXPECT_EQ(block[33], 0xAA);
  static_assert(ProgressPublisher::kBlockBytes == 40);
}

// --------------------------------------------------------------- registry

// Fake engine recording attach/detach traffic.
struct FakeEngine {
  explicit FakeEngine(std::string n) : name(std::move(n)) {}

  std::string name;
  std::vector<std::uint32_t> attached;
  std::vector<std::optional<InstanceProgress>> resumes;  // per attach
  bool fail_attach = false;
  std::uint64_t snapshot_mark = 0;  // stamped into exported snapshots

  EngineBinding Binding() {
    EngineBinding b;
    b.name = name;
    b.attach = [this](std::uint32_t id, const InstanceProgress* resume) {
      if (fail_attach) return false;
      attached.push_back(id);
      resumes.push_back(resume ? std::optional<InstanceProgress>(*resume)
                               : std::nullopt);
      return true;
    };
    b.detach = [this](std::uint32_t id) {
      for (auto it = attached.begin(); it != attached.end(); ++it) {
        if (*it == id) {
          attached.erase(it);
          InstanceProgress snap;
          snap.threads.resize(1);
          snap.threads[0].meta_head = snapshot_mark;
          return std::optional<InstanceProgress>(snap);
        }
      }
      return std::optional<InstanceProgress>();
    };
    return b;
  }
};

TEST(InstanceRegistry, LeastLoadedPlacementSpreadsInstances) {
  InstanceRegistry reg;
  FakeEngine a("a"), b("b");
  const auto ea = reg.AddEngine(a.Binding());
  const auto eb = reg.AddEngine(b.Binding());
  reg.AddInstance(1);
  reg.AddInstance(2);
  reg.AddInstance(3);
  reg.AddInstance(4);
  EXPECT_EQ(reg.InstancesOn(ea).size(), 2u);
  EXPECT_EQ(reg.InstancesOn(eb).size(), 2u);
  EXPECT_EQ(a.attached.size(), 2u);
  EXPECT_EQ(b.attached.size(), 2u);
  EXPECT_EQ(reg.live_engines(), 2u);
  EXPECT_EQ(*reg.EngineName(ea), "a");
}

TEST(InstanceRegistry, PreferredEngineHonored) {
  InstanceRegistry reg;
  FakeEngine a("a"), b("b");
  const auto ea = reg.AddEngine(a.Binding());
  const auto eb = reg.AddEngine(b.Binding());
  (void)ea;
  EXPECT_EQ(reg.AddInstance(7, eb), eb);
  EXPECT_EQ(reg.EngineOf(7), eb);
  EXPECT_EQ(b.attached, std::vector<std::uint32_t>{7});
  EXPECT_TRUE(a.attached.empty());
}

TEST(InstanceRegistry, AttachFailureLeavesInstanceUnplaced) {
  InstanceRegistry reg;
  FakeEngine a("a");
  a.fail_attach = true;
  const auto ea = reg.AddEngine(a.Binding());
  EXPECT_EQ(reg.AddInstance(1, ea), kNoEngine);
  EXPECT_EQ(reg.EngineOf(1), kNoEngine);
}

TEST(InstanceRegistry, StopEngineMigratesWithSnapshot) {
  InstanceRegistry reg;
  FakeEngine a("a"), b("b");
  a.snapshot_mark = 77;
  const auto ea = reg.AddEngine(a.Binding());
  const auto eb = reg.AddEngine(b.Binding());
  reg.AddInstance(1, ea);
  reg.AddInstance(2, ea);

  const auto migrated = reg.StopEngine(ea);
  EXPECT_EQ(migrated.size(), 2u);
  EXPECT_EQ(reg.EngineOf(1), eb);
  EXPECT_EQ(reg.EngineOf(2), eb);
  EXPECT_EQ(reg.live_engines(), 1u);
  ASSERT_EQ(b.resumes.size(), 2u);
  // The survivor received the exact snapshot the stopping engine exported.
  for (const auto& resume : b.resumes) {
    ASSERT_TRUE(resume.has_value());
    ASSERT_EQ(resume->threads.size(), 1u);
    EXPECT_EQ(resume->threads[0].meta_head, 77u);
  }
  // A dead engine cannot take instances or be stopped twice.
  EXPECT_EQ(reg.AddInstance(3, ea), kNoEngine);
  EXPECT_TRUE(reg.StopEngine(ea).empty());
}

TEST(InstanceRegistry, StopLastEngineLeavesInstancesUnassigned) {
  InstanceRegistry reg;
  FakeEngine a("a");
  const auto ea = reg.AddEngine(a.Binding());
  reg.AddInstance(1, ea);
  EXPECT_TRUE(reg.StopEngine(ea).empty());
  EXPECT_EQ(reg.EngineOf(1), kNoEngine);
  EXPECT_EQ(reg.live_engines(), 0u);
  EXPECT_EQ(reg.AddInstance(2), kNoEngine);  // nowhere to place
}

TEST(InstanceRegistry, ReassignMovesSnapshotBetweenEngines) {
  InstanceRegistry reg;
  FakeEngine a("a"), b("b");
  a.snapshot_mark = 5;
  const auto ea = reg.AddEngine(a.Binding());
  const auto eb = reg.AddEngine(b.Binding());
  reg.AddInstance(1, ea);

  EXPECT_TRUE(reg.Reassign(1, eb));
  EXPECT_EQ(reg.EngineOf(1), eb);
  ASSERT_EQ(b.resumes.size(), 1u);
  ASSERT_TRUE(b.resumes[0].has_value());
  EXPECT_EQ(b.resumes[0]->threads[0].meta_head, 5u);
  EXPECT_TRUE(a.attached.empty());

  EXPECT_TRUE(reg.Reassign(1, eb));   // no-op: already there
  EXPECT_EQ(b.resumes.size(), 1u);    // no second attach happened
  EXPECT_FALSE(reg.Reassign(99, eb));  // unknown instance
}

}  // namespace
}  // namespace cowbird::offload
