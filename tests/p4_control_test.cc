// Phase I control plane: setup and teardown over the wire.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/client.h"
#include "fabric_fixture.h"
#include "p4/control.h"
#include "p4/engine.h"

namespace cowbird::p4 {
namespace {

using core::CowbirdClient;
using core::ReqId;
using cowbird::testing::TestFabric;

constexpr std::uint64_t kPoolBase = 0x100000;
constexpr std::uint64_t kHeap = 0x4000000;
constexpr std::uint16_t kRegion = 1;
constexpr net::NodeId kSwitchId = 100;

TEST(ControlMessage, SetupRoundTrip) {
  ControlMessage m;
  m.op = ControlOp::kSetup;
  m.rpc_id = 77;
  m.descriptor.instance_id = 5;
  m.descriptor.compute_node = 1;
  m.descriptor.compute_rkey = 0xABCD;
  m.descriptor.layout.base = 0x10000;
  m.descriptor.layout.threads = 4;
  m.descriptor.layout.meta_slots = 256;
  m.descriptor.layout.data_capacity = 65536;
  m.descriptor.layout.resp_capacity = 131072;
  m.descriptor.regions.push_back(
      core::RegionInfo{1, 2, 0x100000, 0xDEAD, MiB(64)});
  m.descriptor.regions.push_back(
      core::RegionInfo{2, 2, 0x9000000, 0xBEEF, MiB(16)});
  m.conn.compute = HostEndpoint{1, 10, 0x800, 5000};
  m.conn.probe = HostEndpoint{1, 11, 0x801, 5500};
  m.conn.memory = HostEndpoint{2, 12, 0x802, 6000};
  m.conn.wr_compute = HostEndpoint{1, 13, 0x803, 6500};
  m.conn.wr_memory = HostEndpoint{2, 14, 0x804, 7000};

  const auto raw = m.Serialize();
  const auto parsed = ControlMessage::Parse(raw);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->op, ControlOp::kSetup);
  EXPECT_EQ(parsed->rpc_id, 77u);
  EXPECT_EQ(parsed->descriptor.instance_id, 5u);
  EXPECT_EQ(parsed->descriptor.layout.threads, 4);
  EXPECT_EQ(parsed->descriptor.layout.resp_capacity, 131072u);
  ASSERT_EQ(parsed->descriptor.regions.size(), 2u);
  EXPECT_EQ(parsed->descriptor.regions[1].rkey, 0xBEEFu);
  EXPECT_EQ(parsed->conn.probe.switch_qpn, 0x801u);
  EXPECT_EQ(parsed->conn.memory.start_psn, 6000u);
  EXPECT_EQ(parsed->conn.wr_compute.host_qpn, 13u);
  EXPECT_EQ(parsed->conn.wr_memory.switch_qpn, 0x804u);
}

TEST(ControlMessage, TeardownRoundTrip) {
  ControlMessage m;
  m.op = ControlOp::kTeardown;
  m.rpc_id = 3;
  m.descriptor.instance_id = 9;
  const auto parsed = ControlMessage::Parse(m.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->op, ControlOp::kTeardown);
  EXPECT_EQ(parsed->descriptor.instance_id, 9u);
}

TEST(ControlMessage, GarbageRejected) {
  std::vector<std::uint8_t> junk{1, 2};
  EXPECT_FALSE(ControlMessage::Parse(junk).has_value());
  std::vector<std::uint8_t> truncated{1, 0, 0, 0, 9, 1, 2, 3};
  EXPECT_FALSE(ControlMessage::Parse(truncated).has_value());
}

class ControlPlaneTest : public ::testing::Test {
 public:
  ControlPlaneTest()
      : engine_(f_.sw,
                [] {
                  CowbirdP4Engine::Config c;
                  c.switch_node_id = kSwitchId;
                  return c;
                }()),
        server_(engine_, f_.sw, kSwitchId),
        rpc_(f_.compute_nic, kSwitchId) {
    pool_mr_ = f_.memory_dev.RegisterMemory(kPoolBase, MiB(64));
    CowbirdClient::Config cc;
    cc.layout.base = 0x10000;
    cc.layout.threads = 1;
    client_ = std::make_unique<CowbirdClient>(f_.compute_dev, cc);
    client_->RegisterRegion(core::RegionInfo{
        kRegion, TestFabric::kMemoryId, kPoolBase, pool_mr_->rkey, MiB(64)});
    conn_ = ConnectP4Engine(engine_, kSwitchId, f_.compute_dev, f_.memory_dev,
                            0x800);
    engine_.Start();
  }

  // One read through the full stack; returns true if it completed.
  sim::Task<bool> TryRead(sim::SimThread& thread, Nanos timeout) {
    auto& ctx = client_->thread(0);
    auto id = co_await ctx.AsyncRead(thread, kRegion, 0x2000, kHeap, 64);
    if (!id.has_value()) co_return false;
    const core::PollId poll = ctx.PollCreate();
    ctx.PollAdd(poll, *id);
    const Nanos deadline = f_.sim.Now() + timeout;
    while (f_.sim.Now() < deadline) {
      auto done = co_await ctx.PollWait(thread, poll, 1, Micros(50));
      if (!done.empty()) co_return true;
    }
    co_return false;
  }

  TestFabric f_;
  const rdma::MemoryRegion* pool_mr_;
  CowbirdP4Engine engine_;
  ControlPlaneServer server_;
  ControlPlaneClient rpc_;
  std::unique_ptr<CowbirdClient> client_;
  P4Connection conn_;
};

TEST_F(ControlPlaneTest, SetupOverTheWireThenServe) {
  sim::SimThread thread(f_.compute_machine, "app");
  bool setup_ok = false;
  bool read_ok = false;
  f_.sim.Spawn([](ControlPlaneTest& t, sim::SimThread& thr, bool& s_ok,
                  bool& r_ok) -> sim::Task<void> {
    s_ok = co_await t.rpc_.Setup(t.client_->descriptor(), t.conn_);
    r_ok = co_await t.TryRead(thr, Millis(2));
    t.f_.sim.Halt();
  }(*this, thread, setup_ok, read_ok));
  f_.sim.Run();
  EXPECT_TRUE(setup_ok);
  EXPECT_TRUE(read_ok);
  EXPECT_EQ(server_.setups(), 1u);
}

TEST_F(ControlPlaneTest, TeardownStopsService) {
  sim::SimThread thread(f_.compute_machine, "app");
  bool before = false, teardown_ok = false, after = true;
  f_.sim.Spawn([](ControlPlaneTest& t, sim::SimThread& thr, bool& b,
                  bool& td, bool& a) -> sim::Task<void> {
    (void)co_await t.rpc_.Setup(t.client_->descriptor(), t.conn_);
    b = co_await t.TryRead(thr, Millis(2));
    td = co_await t.rpc_.Teardown(t.client_->descriptor().instance_id);
    a = co_await t.TryRead(thr, Millis(1));
    t.f_.sim.Halt();
  }(*this, thread, before, teardown_ok, after));
  f_.sim.Run();
  EXPECT_TRUE(before);
  EXPECT_TRUE(teardown_ok);
  EXPECT_FALSE(after);  // nothing probes the rings anymore
  EXPECT_EQ(server_.teardowns(), 1u);
}

TEST_F(ControlPlaneTest, TeardownOfUnknownInstanceFails) {
  bool ok = true;
  f_.sim.Spawn([](ControlPlaneTest& t, bool& out) -> sim::Task<void> {
    out = co_await t.rpc_.Teardown(4242);
    t.f_.sim.Halt();
  }(*this, ok));
  f_.sim.Run();
  EXPECT_FALSE(ok);
}

}  // namespace
}  // namespace cowbird::p4
