// End-to-end integration: Cowbird client library + Cowbird-P4 switch engine.
// The compute node issues requests with local-memory writes; the *switch*
// moves all data by generating and recycling RDMA packets.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/client.h"
#include "fabric_fixture.h"
#include "p4/engine.h"

namespace cowbird::p4 {
namespace {

using cowbird::testing::TestFabric;
using core::CowbirdClient;
using core::RegionInfo;
using core::ReqId;

constexpr std::uint64_t kPoolBase = 0x100000;
constexpr std::uint64_t kHeap = 0x4000000;
constexpr std::uint16_t kRegion = 1;
constexpr net::NodeId kSwitchId = 100;

std::vector<std::uint8_t> Pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
  return data;
}

class P4EngineTest : public ::testing::Test {
 public:
  P4EngineTest() {
    pool_mr_ = f_.memory_dev.RegisterMemory(kPoolBase, MiB(64));

    CowbirdClient::Config cc;
    cc.layout.base = 0x10000;
    cc.layout.threads = 2;
    cc.layout.meta_slots = 64;
    cc.layout.data_capacity = KiB(64);
    cc.layout.resp_capacity = KiB(64);
    client_ = std::make_unique<CowbirdClient>(f_.compute_dev, cc);
    client_->RegisterRegion(RegionInfo{kRegion, TestFabric::kMemoryId,
                                       kPoolBase, pool_mr_->rkey, MiB(64)});

    CowbirdP4Engine::Config ec;
    ec.switch_node_id = kSwitchId;
    engine_ = std::make_unique<CowbirdP4Engine>(f_.sw, ec);
    auto conn = ConnectP4Engine(*engine_, kSwitchId, f_.compute_dev,
                                f_.memory_dev, 0x800);
    engine_->AddInstance(client_->descriptor(), conn);
    engine_->Start();

    app_thread_ = std::make_unique<sim::SimThread>(f_.compute_machine, "app");
  }

  sim::Task<std::vector<std::uint8_t>> ReadAndWait(int t,
                                                   std::uint64_t offset,
                                                   std::uint32_t len,
                                                   std::uint64_t dest) {
    auto& ctx = client_->thread(t);
    std::optional<ReqId> id;
    while (!(id = co_await ctx.AsyncRead(*app_thread_, kRegion, offset, dest,
                                         len))) {
      co_await app_thread_->Idle(Micros(5));
    }
    const core::PollId poll = ctx.PollCreate();
    ctx.PollAdd(poll, *id);
    while ((co_await ctx.PollWait(*app_thread_, poll, 1, Millis(5))).empty()) {
    }
    std::vector<std::uint8_t> out(len);
    f_.compute_mem.Read(dest, out);
    co_return out;
  }

  sim::Task<void> WriteAndWait(int t, std::uint64_t src, std::uint64_t off,
                               std::uint32_t len) {
    auto& ctx = client_->thread(t);
    std::optional<ReqId> id;
    while (!(id = co_await ctx.AsyncWrite(*app_thread_, kRegion, src, off,
                                          len))) {
      co_await app_thread_->Idle(Micros(5));
    }
    const core::PollId poll = ctx.PollCreate();
    ctx.PollAdd(poll, *id);
    while ((co_await ctx.PollWait(*app_thread_, poll, 1, Millis(5))).empty()) {
    }
  }

  TestFabric f_;
  const rdma::MemoryRegion* pool_mr_;
  std::unique_ptr<CowbirdClient> client_;
  std::unique_ptr<CowbirdP4Engine> engine_;
  std::unique_ptr<sim::SimThread> app_thread_;
};

TEST_F(P4EngineTest, ReadFetchesPoolDataWithZeroComputeCpu) {
  const auto data = Pattern(256, 1);
  f_.memory_mem.Write(kPoolBase + 0x2000, data);
  std::vector<std::uint8_t> got;
  f_.sim.Spawn([](P4EngineTest& t,
                  std::vector<std::uint8_t>& out) -> sim::Task<void> {
    out = co_await t.ReadAndWait(0, 0x2000, 256, kHeap);
    t.f_.sim.Halt();
  }(*this, got));
  f_.sim.Run();
  EXPECT_EQ(got, data);
  EXPECT_GT(engine_->probes_sent(), 0u);
  EXPECT_EQ(engine_->ops_completed(), 1u);
  EXPECT_GT(engine_->packets_recycled(), 0u);
  // The compute node spent only Cowbird-API time (one issue + a handful of
  // completion checks while waiting) — far less than even two verb posts,
  // let alone a sync RDMA spin of the same duration (~4 us ≈ 4000 ns).
  rdma::CostModel costs;
  EXPECT_LT(app_thread_->TimeIn(sim::CpuCategory::kCommunication),
            costs.PostTotal() + 15 * costs.cowbird_poll + 10 * costs.llc_access);
}

TEST_F(P4EngineTest, WriteLandsInPool) {
  const auto data = Pattern(512, 2);
  f_.compute_mem.Write(kHeap, data);
  f_.sim.Spawn([](P4EngineTest& t) -> sim::Task<void> {
    co_await t.WriteAndWait(0, kHeap, 0x8000, 512);
    t.f_.sim.Halt();
  }(*this));
  f_.sim.Run();
  std::vector<std::uint8_t> out(512);
  f_.memory_mem.Read(kPoolBase + 0x8000, out);
  EXPECT_EQ(out, data);
}

TEST_F(P4EngineTest, ReadAfterWriteSeesNewData) {
  const auto new_data = Pattern(128, 4);
  f_.memory_mem.Write(kPoolBase + 0x9000, Pattern(128, 3));
  f_.compute_mem.Write(kHeap, new_data);
  std::vector<std::uint8_t> got;
  f_.sim.Spawn([](P4EngineTest& t,
                  std::vector<std::uint8_t>& out) -> sim::Task<void> {
    auto& ctx = t.client_->thread(0);
    auto w = co_await ctx.AsyncWrite(*t.app_thread_, kRegion, kHeap, 0x9000,
                                     128);
    auto r = co_await ctx.AsyncRead(*t.app_thread_, kRegion, 0x9000,
                                    kHeap + 4096, 128);
    EXPECT_TRUE(w && r);
    const core::PollId poll = ctx.PollCreate();
    ctx.PollAdd(poll, *w);
    ctx.PollAdd(poll, *r);
    int done = 0;
    while (done < 2) {
      done += static_cast<int>(
          (co_await ctx.PollWait(*t.app_thread_, poll, 2, Millis(5))).size());
    }
    out.resize(128);
    t.f_.compute_mem.Read(kHeap + 4096, out);
    t.f_.sim.Halt();
  }(*this, got));
  f_.sim.Run();
  EXPECT_EQ(got, new_data);
  EXPECT_GT(engine_->reads_paused_by_writes(), 0u);
}

TEST_F(P4EngineTest, PausesEvenNonOverlappingReads) {
  // The RMT restriction (Section 5.3): unlike Cowbird-Spot's exact range
  // check, Cowbird-P4 pauses ALL newly probed reads while a write is
  // active — even to disjoint addresses.
  const auto b = Pattern(128, 6);
  f_.memory_mem.Write(kPoolBase + 0x20000, b);
  f_.compute_mem.Write(kHeap, Pattern(128, 5));
  f_.sim.Spawn([](P4EngineTest& t) -> sim::Task<void> {
    auto& ctx = t.client_->thread(0);
    auto w = co_await ctx.AsyncWrite(*t.app_thread_, kRegion, kHeap, 0x9000,
                                     128);
    auto r = co_await ctx.AsyncRead(*t.app_thread_, kRegion, 0x20000,
                                    kHeap + 4096, 128);  // disjoint!
    EXPECT_TRUE(w && r);
    const core::PollId poll = ctx.PollCreate();
    ctx.PollAdd(poll, *w);
    ctx.PollAdd(poll, *r);
    int done = 0;
    while (done < 2) {
      done += static_cast<int>(
          (co_await ctx.PollWait(*t.app_thread_, poll, 2, Millis(5))).size());
    }
    t.f_.sim.Halt();
  }(*this));
  f_.sim.Run();
  EXPECT_GT(engine_->reads_paused_by_writes(), 0u);
  std::vector<std::uint8_t> out(128);
  f_.compute_mem.Read(kHeap + 4096, out);
  EXPECT_EQ(out, b);
}

TEST_F(P4EngineTest, LargeTransfersSegmentAndRecycle) {
  const auto data = Pattern(5 * 1024, 9);
  f_.compute_mem.Write(kHeap, data);
  std::vector<std::uint8_t> got;
  f_.sim.Spawn([](P4EngineTest& t,
                  std::vector<std::uint8_t>& out) -> sim::Task<void> {
    co_await t.WriteAndWait(0, kHeap, 0x70000, 5 * 1024);
    out = co_await t.ReadAndWait(0, 0x70000, 5 * 1024, kHeap + 0x10000);
    t.f_.sim.Halt();
  }(*this, got));
  f_.sim.Run();
  EXPECT_EQ(got, data);
  // 5 KiB each way = 5 packets converted per direction, plus headers.
  EXPECT_GE(engine_->packets_recycled(), 10u);
}

TEST_F(P4EngineTest, TwoThreadsProgressIndependently) {
  const auto d0 = Pattern(256, 7);
  const auto d1 = Pattern(256, 8);
  f_.memory_mem.Write(kPoolBase + 0x50000, d0);
  f_.memory_mem.Write(kPoolBase + 0x60000, d1);
  int finished = 0;
  for (int t = 0; t < 2; ++t) {
    f_.sim.Spawn([](P4EngineTest& test, int tid, int& count)
                     -> sim::Task<void> {
      (void)co_await test.ReadAndWait(tid, tid == 0 ? 0x50000 : 0x60000, 256,
                                      kHeap + tid * 4096);
      if (++count == 2) test.f_.sim.Halt();
    }(*this, t, finished));
  }
  f_.sim.Run();
  std::vector<std::uint8_t> out0(256), out1(256);
  f_.compute_mem.Read(kHeap, out0);
  f_.compute_mem.Read(kHeap + 4096, out1);
  EXPECT_EQ(out0, d0);
  EXPECT_EQ(out1, d1);
}

TEST_F(P4EngineTest, SustainedMixedWorkload) {
  f_.sim.Spawn([](P4EngineTest& t) -> sim::Task<void> {
    Rng rng(77);
    for (int i = 0; i < 150; ++i) {
      const auto len = static_cast<std::uint32_t>(rng.Between(8, 2048));
      const std::uint64_t off = rng.Below(512) * 2048;
      if (rng.Bernoulli(0.4)) {
        const auto data = Pattern(len, 5000 + i);
        t.f_.compute_mem.Write(kHeap, data);
        co_await t.WriteAndWait(0, kHeap, off, len);
        auto got = co_await t.ReadAndWait(0, off, len, kHeap + 0x100000);
        EXPECT_EQ(got, data) << "iteration " << i;
      } else {
        auto got = co_await t.ReadAndWait(0, off, len, kHeap + 0x100000);
        std::vector<std::uint8_t> expect(len);
        t.f_.memory_mem.Read(kPoolBase + off, expect);
        EXPECT_EQ(got, expect) << "iteration " << i;
      }
    }
    t.f_.sim.Halt();
  }(*this));
  f_.sim.Run();
}

TEST_F(P4EngineTest, SurvivesPacketLossViaGoBackN) {
  auto rng = std::make_shared<Rng>(99);
  auto loss = [rng](const net::Packet& p) {
    return rdma::LooksLikeRdma(p) && rng->Bernoulli(0.02);
  };
  f_.sw.EgressLink(f_.memory_nic.switch_port()).set_drop_filter(loss);
  f_.sw.EgressLink(f_.compute_nic.switch_port()).set_drop_filter(loss);

  f_.sim.Spawn([](P4EngineTest& t) -> sim::Task<void> {
    for (int i = 0; i < 40; ++i) {
      const auto data = Pattern(300, 9000 + i);
      t.f_.compute_mem.Write(kHeap, data);
      co_await t.WriteAndWait(0, kHeap, i * 512, 300);
      auto got = co_await t.ReadAndWait(0, i * 512, 300, kHeap + 0x100000);
      EXPECT_EQ(got, data) << "iteration " << i;
    }
    t.f_.sim.Halt();
  }(*this));
  f_.sim.Run();
  EXPECT_GT(engine_->recoveries(), 0u);
}

TEST_F(P4EngineTest, ResourceSpecMatchesTable5Shape) {
  const P4PipelineSpec spec = BuildCowbirdP4Spec(P4SpecParams{});
  const auto totals = spec.Sum();
  // Table 5 (PHV 1085 b, SRAM 1424 KB, TCAM 1.28 KB, 12 stages, 38 VLIW,
  // 11 sALU at 32 ports) plus the elastic-pool ig3_range_translate stage
  // (DESIGN.md §14): +1 stage, +3 VLIW, +2.5 KiB SRAM, +2.5 KiB TCAM.
  EXPECT_EQ(totals.phv_bits, 1085);
  EXPECT_EQ(totals.stages, 13);
  EXPECT_EQ(totals.vliw_instructions, 41);
  EXPECT_EQ(totals.stateful_alus, 11);
  EXPECT_NEAR(totals.sram_kib, 1426.5, 30.0);
  EXPECT_NEAR(totals.tcam_kib, 3.78, 0.05);
}

// Two instances share one switch: TDM probing must serve both.
TEST(P4MultiInstance, TimeDivisionMultiplexing) {
  TestFabric f;
  const auto* pool_mr = f.memory_dev.RegisterMemory(kPoolBase, MiB(64));

  CowbirdP4Engine::Config ec;
  ec.switch_node_id = kSwitchId;
  CowbirdP4Engine engine(f.sw, ec);

  std::vector<std::unique_ptr<CowbirdClient>> clients;
  for (int i = 0; i < 2; ++i) {
    CowbirdClient::Config cc;
    cc.layout.base = 0x10000 + i * MiB(8);
    cc.layout.threads = 1;
    cc.layout.meta_slots = 64;
    cc.layout.data_capacity = KiB(64);
    cc.layout.resp_capacity = KiB(64);
    clients.push_back(
        std::make_unique<CowbirdClient>(f.compute_dev, cc));
    clients.back()->RegisterRegion(RegionInfo{
        kRegion, TestFabric::kMemoryId, kPoolBase, pool_mr->rkey, MiB(64)});
    auto conn = ConnectP4Engine(engine, kSwitchId, f.compute_dev,
                                f.memory_dev, 0x800 + i * 8);  // 5 QPs per instance
    engine.AddInstance(clients.back()->descriptor(), conn);
  }
  engine.Start();

  sim::SimThread app(f.compute_machine, "app");
  const auto d0 = Pattern(64, 1);
  const auto d1 = Pattern(64, 2);
  f.memory_mem.Write(kPoolBase, d0);
  f.memory_mem.Write(kPoolBase + 4096, d1);

  int finished = 0;
  for (int i = 0; i < 2; ++i) {
    f.sim.Spawn([](CowbirdClient& client, sim::SimThread& thread,
                   std::uint64_t offset, std::uint64_t dest, int& count,
                   sim::Simulation& sim) -> sim::Task<void> {
      auto& ctx = client.thread(0);
      std::optional<ReqId> id;
      while (!(id = co_await ctx.AsyncRead(thread, kRegion, offset, dest,
                                           64))) {
        co_await thread.Idle(Micros(5));
      }
      const core::PollId poll = ctx.PollCreate();
      ctx.PollAdd(poll, *id);
      while ((co_await ctx.PollWait(thread, poll, 1, Millis(5))).empty()) {
      }
      if (++count == 2) sim.Halt();
    }(*clients[i], app, i * 4096ull, kHeap + i * 4096, finished, f.sim));
  }
  f.sim.Run();
  ASSERT_EQ(finished, 2);
  std::vector<std::uint8_t> out0(64), out1(64);
  f.compute_mem.Read(kHeap, out0);
  f.compute_mem.Read(kHeap + 4096, out1);
  EXPECT_EQ(out0, d0);
  EXPECT_EQ(out1, d1);
  EXPECT_EQ(engine.ops_completed(), 2u);
}

}  // namespace
}  // namespace cowbird::p4
