// The determinism contract of the parallel execution layer (sim/parallel.h):
//
//   * ParallelFor runs every index exactly once for any job count, and a
//     sweep of independent simulations produces the same per-index outcomes
//     no matter how many workers ran it.
//   * A domain-split simulation is bit-identical across worker counts
//     (1 vs 2 vs 8), for the hash workload and for full chaos runs with
//     fault plans and crash migration, on both engines.
//   * Serial vs split is outcome-equivalent only up to same-timestamp
//     tie-breaks at the domain cut (sub-percent ops drift) — pinned here
//     with a tolerance, while serial itself stays golden-pinned by
//     chaos_parity_test.
//   * The building blocks (SpscQueue, EpochBarrier, DomainGroup epochs,
//     Snapshot/SpanTracer merge) behave as documented, and a zero-lookahead
//     cut is refused loudly instead of deadlocking.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "chaos/runner.h"
#include "sim/parallel.h"
#include "sim/simulation.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "workload/hash_workload.h"

namespace cowbird {
namespace {

// ---------------------------------------------------------------- ParallelFor

TEST(ParallelForTest, EveryIndexExactlyOnceForAnyJobCount) {
  for (int jobs : {1, 2, 8, 64}) {
    constexpr int kN = 500;
    std::vector<std::atomic<int>> hits(kN);
    sim::ParallelFor(jobs, kN,
                     [&](int i) { hits[static_cast<std::size_t>(i)]++; });
    for (int i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "index " << i << " with jobs=" << jobs;
    }
  }
}

TEST(ParallelForTest, EmptyRangeIsANoOp) {
  std::atomic<int> calls{0};
  sim::ParallelFor(4, 0, [&](int) { calls++; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, HardwareJobsIsPositive) {
  EXPECT_GE(sim::HardwareJobs(), 1);
  EXPECT_EQ(sim::HardwareJobs(), sim::MaxParallelism());
}

// Each index runs a private deterministic simulation; the per-index results
// must not depend on how many workers executed the sweep.
TEST(ParallelForTest, SweepOutcomesIndependentOfJobCount) {
  auto sweep = [](int jobs) {
    std::vector<std::uint64_t> ops(4, 0);
    sim::ParallelFor(jobs, 4, [&](int i) {
      workload::HashWorkloadConfig c;
      c.paradigm = workload::Paradigm::kCowbird;
      c.threads = 2;
      c.record_size = 64;
      c.records = 50'000;
      c.local_fraction = 0;
      c.warmup = Micros(100);
      c.measure = Micros(400);
      c.seed = static_cast<std::uint64_t>(i) + 1;
      ops[static_cast<std::size_t>(i)] = workload::RunHashWorkload(c).ops;
    });
    return ops;
  };
  const std::vector<std::uint64_t> serial = sweep(1);
  for (std::uint64_t o : serial) EXPECT_GT(o, 0u);
  EXPECT_EQ(sweep(2), serial);
  EXPECT_EQ(sweep(8), serial);
}

// ------------------------------------------------------------------ SpscQueue

TEST(SpscQueueTest, FifoOrderAndFullEmptyBehavior) {
  sim::SpscQueue<int, 4> q;
  int out = 0;
  EXPECT_FALSE(q.TryPop(out));
  EXPECT_EQ(q.SizeApprox(), 0u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i + 10));
  EXPECT_FALSE(q.TryPush(99));  // full
  EXPECT_EQ(q.SizeApprox(), 4u);
  ASSERT_TRUE(q.TryPop(out));
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(q.TryPush(14));  // slot freed, wraps
  for (int expect = 11; expect <= 14; ++expect) {
    ASSERT_TRUE(q.TryPop(out));
    EXPECT_EQ(out, expect);
  }
  EXPECT_FALSE(q.TryPop(out));
}

TEST(SpscQueueTest, CrossThreadTransferPreservesOrder) {
  sim::SpscQueue<std::uint64_t, 64> q;
  constexpr std::uint64_t kItems = 100'000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!q.TryPush(std::uint64_t(i))) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kItems) {
    std::uint64_t v = 0;
    if (!q.TryPop(v)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(v, expected);
    ++expected;
  }
  producer.join();
}

// --------------------------------------------------------------- EpochBarrier

TEST(EpochBarrierTest, RendezvousAcrossRounds) {
  constexpr int kParties = 4;
  constexpr int kRounds = 200;
  sim::EpochBarrier barrier(kParties);
  std::atomic<int> counter{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int p = 0; p < kParties; ++p) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        counter.fetch_add(1);
        barrier.ArriveAndWait();
        // All parties incremented before anyone passed; nobody increments
        // again until after the second barrier below.
        if (counter.load() != kParties * (round + 1)) failed.store(true);
        barrier.ArriveAndWait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kParties * kRounds);
}

// ---------------------------------------------------------------- DomainGroup

TEST(DomainGroupTest, CrossPostDeliversAtRequestedTime) {
  for (int workers : {1, 2}) {
    sim::Simulation a;
    sim::Simulation b;
    sim::DomainGroup group(workers);
    group.AddDomain(a);
    group.AddDomain(b);
    group.NoteCrossLink(150);

    bool delivered = false;
    Nanos delivered_at = -1;
    a.ScheduleAt(100, [&] {
      group.CrossPost(/*src=*/0, /*dst=*/1, /*when=*/300, [&] {
        delivered = true;
        delivered_at = b.Now();
      });
    });
    group.Run();

    EXPECT_TRUE(delivered);
    EXPECT_EQ(delivered_at, 300);
    EXPECT_EQ(group.cross_events_delivered(), 1u);
    EXPECT_GE(group.Now(), 300);
    EXPECT_GT(group.epochs(), 0u);
  }
}

TEST(DomainGroupTest, GlobalEventsRunBetweenEpochsWithDomainsAdvanced) {
  sim::Simulation a;
  sim::Simulation b;
  sim::DomainGroup group(1);
  group.AddDomain(a);
  group.AddDomain(b);
  group.NoteCrossLink(150);

  std::vector<int> order;
  a.ScheduleAt(100, [&] { order.push_back(1); });
  b.ScheduleAt(700, [&] { order.push_back(3); });
  Nanos a_now = -1, b_now = -1;
  group.ScheduleGlobal(500, [&] {
    order.push_back(2);
    a_now = a.Now();
    b_now = b.Now();
  });
  group.Run();

  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  // Every domain is quiescent and advanced to the global's time.
  EXPECT_EQ(a_now, 500);
  EXPECT_EQ(b_now, 500);
}

TEST(DomainGroupDeathTest, ZeroLookaheadIsRefusedAtRun) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  sim::Simulation a;
  sim::Simulation b;
  sim::DomainGroup group(1);
  group.AddDomain(a);
  group.AddDomain(b);
  // A zero-propagation cross link admits no safe epoch horizon; the group
  // must refuse to run instead of spinning or deadlocking.
  group.NoteCrossLink(0);
  a.ScheduleAt(10, [] {});
  EXPECT_DEATH(group.Run(), "zero-lookahead cut");
}

TEST(DomainGroupDeathTest, ZeroLookaheadErrorNamesLinkAndEndpoints) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  sim::Simulation a;
  sim::Simulation b;
  sim::DomainGroup group(1);
  group.AddDomain(a);
  group.AddDomain(b);
  sim::CutEdge edge;
  edge.src = 0;
  edge.dst = 1;
  edge.lookahead = 0;
  edge.link = "uplink[clientX]";
  edge.src_node = "clientX";
  edge.dst_node = "torY";
  group.NoteCrossLink(edge);
  a.ScheduleAt(10, [] {});
  // The structured error must name the offending link and both endpoints so
  // a misconfigured topology is actionable without a debugger.
  EXPECT_DEATH(group.Run(),
               "uplink\\[clientX\\].*clientX.*\\(domain 0\\).*torY.*"
               "\\(domain 1\\)");
}

// ------------------------------------------------- hash workload, split mode

workload::HashWorkloadConfig SplitBase(workload::Paradigm paradigm) {
  workload::HashWorkloadConfig c;
  c.paradigm = paradigm;
  c.threads = 4;
  c.record_size = 64;
  c.records = 100'000;
  c.local_fraction = 0;
  c.window = 64;
  c.warmup = Micros(100);
  c.measure = Micros(500);
  c.seed = 7;
  return c;
}

TEST(SplitDomainsTest, BitIdenticalAcrossWorkerCounts) {
  for (workload::Paradigm paradigm :
       {workload::Paradigm::kCowbird, workload::Paradigm::kCowbirdP4}) {
    workload::HashWorkloadConfig c = SplitBase(paradigm);
    c.split_domains = true;
    c.split_workers = 1;
    const workload::WorkloadResult one = workload::RunHashWorkload(c);
    EXPECT_GT(one.ops, 0u);
    for (int workers : {2, 8}) {
      c.split_workers = workers;
      const workload::WorkloadResult many = workload::RunHashWorkload(c);
      EXPECT_EQ(many.ops, one.ops) << "workers=" << workers;
      EXPECT_EQ(many.sim_events, one.sim_events) << "workers=" << workers;
      EXPECT_EQ(many.elapsed, one.elapsed) << "workers=" << workers;
    }
  }
}

TEST(SplitDomainsTest, OutcomeTracksSerialWithinTieBreakTolerance) {
  for (workload::Paradigm paradigm :
       {workload::Paradigm::kCowbird, workload::Paradigm::kCowbirdP4}) {
    const workload::WorkloadResult serial =
        workload::RunHashWorkload(SplitBase(paradigm));
    workload::HashWorkloadConfig c = SplitBase(paradigm);
    c.split_domains = true;
    c.split_workers = 2;
    const workload::WorkloadResult split = workload::RunHashWorkload(c);
    ASSERT_GT(serial.ops, 0u);
    ASSERT_GT(split.ops, 0u);
    // Cross-domain deliveries are sequenced at drain time, which can flip
    // same-timestamp tie-breaks at the cut — a sub-percent effect. 2% is a
    // generous pin; byte-equality of the serial path itself is owned by
    // chaos_parity_test.
    const double drift =
        std::abs(static_cast<double>(split.ops) -
                 static_cast<double>(serial.ops)) /
        static_cast<double>(serial.ops);
    EXPECT_LT(drift, 0.02) << "serial=" << serial.ops
                           << " split=" << split.ops;
  }
}

// --------------------------------------------------------- chaos, split mode

TEST(ChaosSplitTest, BitIdenticalAcrossWorkerCountsWithFaultsAndCrashes) {
  for (chaos::EngineKind engine :
       {chaos::EngineKind::kSpot, chaos::EngineKind::kP4}) {
    // Seed 3 schedules an engine crash (odd seeds do); seed 4 is crash-free.
    for (std::uint64_t seed : {std::uint64_t{3}, std::uint64_t{4}}) {
      chaos::ChaosOptions opt = chaos::SweepOptions(engine, seed);
      opt.mode = chaos::ExecutionMode::kSplit;
      opt.split_workers = 1;
      const chaos::ChaosResult one = chaos::RunChaos(opt);
      opt.split_workers = 2;
      const chaos::ChaosResult two = chaos::RunChaos(opt);

      EXPECT_TRUE(one.Passed()) << chaos::EngineKindName(engine)
                                << " seed " << seed;
      EXPECT_TRUE(two.Passed()) << chaos::EngineKindName(engine)
                                << " seed " << seed;
      EXPECT_EQ(one.history.size(), two.history.size());
      EXPECT_EQ(one.reads_checked, two.reads_checked);
      EXPECT_EQ(one.writes_completed, two.writes_completed);
      EXPECT_EQ(one.faults_injected, two.faults_injected);
      EXPECT_EQ(one.decided_dropped, two.decided_dropped);
      EXPECT_EQ(one.decided_duplicated, two.decided_duplicated);
      EXPECT_EQ(one.decided_reordered, two.decided_reordered);
      EXPECT_EQ(one.decided_delayed, two.decided_delayed);
      EXPECT_EQ(one.crashes_executed, two.crashes_executed);
      if (seed % 2 == 1) EXPECT_GT(one.crashes_executed, 0u);
    }
  }
}

TEST(ChaosSplitTest, SerialAndSplitBothPassInvariants) {
  // Faulted split runs draw from per-link RNG streams, so their decision
  // counts are not comparable to serial — but both modes must uphold every
  // invariant (no violations, exact link counter audit) on the same plan.
  for (chaos::EngineKind engine :
       {chaos::EngineKind::kSpot, chaos::EngineKind::kP4}) {
    for (std::uint64_t seed : {std::uint64_t{3}, std::uint64_t{4}}) {
      chaos::ChaosOptions opt = chaos::SweepOptions(engine, seed);
      const chaos::ChaosResult serial = chaos::RunChaos(opt);
      opt.mode = chaos::ExecutionMode::kSplit;
      opt.split_workers = 2;
      const chaos::ChaosResult split = chaos::RunChaos(opt);
      EXPECT_TRUE(serial.Passed()) << chaos::EngineKindName(engine)
                                   << " seed " << seed;
      EXPECT_TRUE(split.Passed()) << chaos::EngineKindName(engine)
                                  << " seed " << seed;
      EXPECT_EQ(serial.history.size(), split.history.size());
      EXPECT_EQ(serial.crashes_executed, split.crashes_executed);
    }
  }
}

// ------------------------------------------------------------ snapshot merge

TEST(SnapshotMergeTest, SumsCollisionsAndKeepsSortedOrder) {
  telemetry::MetricRegistry r1;
  telemetry::MetricRegistry r2;
  r1.GetCounter("ops", {{"engine", "a"}}).Add(3);
  r1.GetCounter("zz_only_r1").Add(1);
  r1.GetGauge("depth").Set(5);
  r1.GetHistogram("lat").Observe(2);
  r1.GetHistogram("lat").Observe(4);
  r2.GetCounter("ops", {{"engine", "a"}}).Add(4);
  r2.GetCounter("aa_only_r2").Add(2);
  r2.GetGauge("depth").Set(7);
  r2.GetHistogram("lat").Observe(1024);

  telemetry::Snapshot merged = r1.TakeSnapshot();
  merged.MergeFrom(r2.TakeSnapshot());

  EXPECT_EQ(merged.CounterValue("ops{engine=a}"), 7u);
  EXPECT_EQ(merged.CounterValue("aa_only_r2"), 2u);
  EXPECT_EQ(merged.CounterValue("zz_only_r1"), 1u);
  EXPECT_EQ(merged.GaugeValue("depth"), 12);
  const auto* lat = merged.FindHistogram("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 3u);
  for (std::size_t i = 1; i < merged.counters.size(); ++i) {
    EXPECT_LT(merged.counters[i - 1].key, merged.counters[i].key);
  }

  // Merge order onto a fresh aggregate is deterministic: (r1 then r2) from
  // an empty snapshot equals the snapshot-level merge above.
  telemetry::Snapshot again;
  again.MergeFrom(r1.TakeSnapshot());
  again.MergeFrom(r2.TakeSnapshot());
  EXPECT_EQ(again.ToJson(), merged.ToJson());
}

TEST(SpanTracerMergeTest, AppendsSpansAndInstants) {
  Nanos t1 = 0;
  Nanos t2 = 0;
  telemetry::SpanTracer a([&] { return t1; });
  telemetry::SpanTracer b([&] { return t2; });
  const auto h1 = a.Begin("domain0", "epoch");
  t1 = 10;
  a.End(h1);
  const auto h2 = b.Begin("domain1", "drain");
  t2 = 25;
  b.End(h2);
  b.Instant("domain1", "crash");

  a.MergeFrom(b);
  EXPECT_EQ(a.span_count(), 2u);
  EXPECT_EQ(a.instant_count(), 1u);
  // The merged tracer exports one coherent Chrome trace.
  EXPECT_NE(a.ToChromeTraceJson().find("drain"), std::string::npos);
}

}  // namespace
}  // namespace cowbird
