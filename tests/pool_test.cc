#include "common/pool.h"

#include <cstdint>
#include <string>
#include <vector>

#include "common/inline_function.h"
#include "gtest/gtest.h"
#include "telemetry/metrics.h"

namespace cowbird {
namespace {

struct Tracked {
  static int live;
  int value = 0;
  explicit Tracked(int v) : value(v) { ++live; }
  ~Tracked() { --live; }
};
int Tracked::live = 0;

TEST(Pool, AcquireReleaseRecyclesSlots) {
  Pool<Tracked> pool(4);
  const PoolHandle a = pool.Acquire(7);
  ASSERT_TRUE(a);
  EXPECT_EQ(pool.Get(a)->value, 7);
  EXPECT_EQ(Tracked::live, 1);

  pool.Release(a);
  EXPECT_EQ(Tracked::live, 0);
  EXPECT_FALSE(pool.Valid(a));

  // The slot comes back under a new generation.
  const PoolHandle b = pool.Acquire(8);
  EXPECT_EQ(b.index, a.index);
  EXPECT_NE(b.generation, a.generation);
  EXPECT_EQ(pool.Get(b)->value, 8);
  pool.Release(b);
}

TEST(Pool, ExhaustionReturnsNullHandleAndCounts) {
  Pool<int> pool(2);
  const PoolHandle a = pool.Acquire(1);
  const PoolHandle b = pool.Acquire(2);
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);

  const PoolHandle c = pool.Acquire(3);
  EXPECT_TRUE(c.IsNull());
  EXPECT_EQ(pool.stats().exhausted_total, 1u);
  EXPECT_EQ(pool.stats().in_use, 2u);

  // Releasing makes the slot available again; the exhaustion stays counted.
  pool.Release(a);
  const PoolHandle d = pool.Acquire(4);
  EXPECT_TRUE(d);
  EXPECT_EQ(pool.stats().exhausted_total, 1u);
}

TEST(Pool, ExhaustedCounterSurfacesThroughRegistryGauge) {
  Pool<int> pool(1);
  telemetry::MetricRegistry registry;
  const telemetry::Labels labels{{"pool", "test"}};
  BindPoolTelemetry(registry, labels, pool.stats());

  (void)pool.Acquire(1);
  (void)pool.Acquire(2);  // exhausts
  const auto snapshot = registry.TakeSnapshot();
  bool saw_exhausted = false, saw_in_use = false, saw_high_water = false;
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.key.find("pool_exhausted_total") == 0) {
      saw_exhausted = true;
      EXPECT_EQ(gauge.value, 1);
    } else if (gauge.key.find("pool_in_use") == 0) {
      saw_in_use = true;
      EXPECT_EQ(gauge.value, 1);
    } else if (gauge.key.find("pool_high_water") == 0) {
      saw_high_water = true;
      EXPECT_EQ(gauge.value, 1);
    }
  }
  EXPECT_TRUE(saw_exhausted);
  EXPECT_TRUE(saw_in_use);
  EXPECT_TRUE(saw_high_water);
  UnbindPoolTelemetry(registry, labels);
}

TEST(Pool, HighWaterTracksPeakNotCurrent) {
  Pool<int> pool(8);
  std::vector<PoolHandle> handles;
  for (int i = 0; i < 5; ++i) handles.push_back(pool.Acquire(i));
  EXPECT_EQ(pool.stats().high_water, 5u);
  for (const PoolHandle h : handles) pool.Release(h);
  EXPECT_EQ(pool.stats().in_use, 0u);
  EXPECT_EQ(pool.stats().high_water, 5u);

  (void)pool.Acquire(9);
  EXPECT_EQ(pool.stats().high_water, 5u);
}

TEST(Pool, GrowablePoolKeepsAddressesStableAcrossGrowth) {
  Pool<int> pool(2, /*growable=*/true);
  std::vector<PoolHandle> handles;
  std::vector<int*> addrs;
  for (int i = 0; i < 64; ++i) {
    handles.push_back(pool.Acquire(i));
    addrs.push_back(pool.Get(handles.back()));
  }
  EXPECT_EQ(pool.stats().exhausted_total, 0u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(pool.Get(handles[i]), addrs[i]);
    EXPECT_EQ(*pool.Get(handles[i]), i);
  }
}

using PoolDeathTest = ::testing::Test;

TEST(PoolDeathTest, StaleGenerationIsCaughtNotAliased) {
  Pool<int> pool(2);
  const PoolHandle a = pool.Acquire(1);
  pool.Release(a);
  const PoolHandle b = pool.Acquire(2);  // recycles a's slot
  ASSERT_EQ(b.index, a.index);

  // The recycled slot's old handle must die loudly, not read the new
  // tenant: this is the ABA case the generation tag exists for.
  EXPECT_DEATH((void)pool.Get(a), "CHECK failed");
  EXPECT_EQ(pool.TryGet(a), nullptr);
  EXPECT_DEATH(pool.Release(a), "CHECK failed");
}

TEST(Arena, ResetReclaimsAndReusesTheSameStorage) {
  BufferArena arena(128);
  std::uint8_t* first = arena.Alloc(100);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(arena.used(), 100u);

  // Over capacity: nullptr, counted, nothing corrupted.
  EXPECT_EQ(arena.Alloc(64), nullptr);
  EXPECT_EQ(arena.stats().exhausted_total, 1u);

  arena.Reset();
  EXPECT_EQ(arena.used(), 0u);
  std::uint8_t* again = arena.Alloc(100);
  EXPECT_EQ(again, first);  // same storage, no new allocation
  EXPECT_EQ(arena.stats().high_water, 100u);
}

TEST(FixedDeque, FifoOrderAndGrowth) {
  FixedDeque<int> dq(2);
  for (int i = 0; i < 100; ++i) dq.push_back(i);
  EXPECT_EQ(dq.size(), 100u);
  EXPECT_EQ(dq.front(), 0);
  EXPECT_EQ(dq.back(), 99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dq.front(), i);
    dq.pop_front();
  }
  EXPECT_TRUE(dq.empty());
}

TEST(FixedDeque, WrapsWithoutReallocatingInSteadyState) {
  FixedDeque<std::string> dq(4);
  // Push/pop cycles far beyond capacity: the ring just wraps.
  for (int round = 0; round < 1000; ++round) {
    dq.push_back("r" + std::to_string(round));
    dq.push_back("s" + std::to_string(round));
    EXPECT_EQ(dq.front(), "r" + std::to_string(round));
    dq.pop_front();
    dq.pop_front();
  }
  EXPECT_TRUE(dq.empty());
}

TEST(FixedDeque, EraseAtPreservesOrder) {
  FixedDeque<int> dq;
  for (int i = 0; i < 8; ++i) dq.push_back(i);
  dq.erase_at(3);
  dq.erase_at(0);
  dq.erase_at(5);  // was 7
  std::vector<int> rest;
  for (int v : dq) rest.push_back(v);
  EXPECT_EQ(rest, (std::vector<int>{1, 2, 4, 5, 6}));
}

TEST(DenseMap, InsertFindErase) {
  DenseMap<std::string> map;
  for (std::uint64_t k = 0; k < 200; ++k) {
    map[k * 977] = "v" + std::to_string(k);
  }
  EXPECT_EQ(map.size(), 200u);
  for (std::uint64_t k = 0; k < 200; ++k) {
    auto* v = map.Find(k * 977);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, "v" + std::to_string(k));
  }
  EXPECT_EQ(map.Find(12345), nullptr);

  // Erase every other key; the rest must survive the backward shifts.
  for (std::uint64_t k = 0; k < 200; k += 2) EXPECT_TRUE(map.Erase(k * 977));
  EXPECT_EQ(map.size(), 100u);
  for (std::uint64_t k = 0; k < 200; ++k) {
    if (k % 2 == 0) {
      EXPECT_EQ(map.Find(k * 977), nullptr);
    } else {
      ASSERT_NE(map.Find(k * 977), nullptr);
    }
  }
  EXPECT_FALSE(map.Erase(999999));
}

TEST(InlineFunction, CallsAndMovesWithoutCopy) {
  int calls = 0;
  InlineFunction<void()> f([&calls] { ++calls; });
  f();
  InlineFunction<void()> g = std::move(f);
  g();
  EXPECT_EQ(calls, 2);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(g));
}

TEST(InlineFunction, CarriesMoveOnlyCaptures) {
  auto payload = std::make_unique<int>(42);
  InlineFunction<int()> f(
      [p = std::move(payload)] { return *p; });
  EXPECT_EQ(f(), 42);
}

TEST(InlineFunction, OversizedCapturesStillWork) {
  struct Big {
    char bytes[256] = {};
  };
  Big big;
  big.bytes[200] = 7;
  InlineFunction<int(), 64> f([big] { return int{big.bytes[200]}; });
  InlineFunction<int(), 64> g = std::move(f);
  EXPECT_EQ(g(), 7);
}

}  // namespace
}  // namespace cowbird
