// Property-based tests over the paper's invariants, parameterized across
// engines, transfer sizes, and fault rates (TEST_P sweeps).
//
// The central property (Section 4.1/5.3): Cowbird provides per-type
// linearizability with read-after-write consistency — a read issued after a
// write to an overlapping range returns that write's data (never older,
// never torn), and a read issued *before* a write never observes it.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <tuple>

#include "common/ring.h"
#include "common/rng.h"
#include "core/client.h"
#include "fabric_fixture.h"
#include "p4/engine.h"
#include "spot/agent.h"
#include "spot/setup.h"
#include "test_seed.h"

namespace cowbird {
namespace {

using core::CowbirdClient;
using core::ReqId;
using cowbird::testing::TestFabric;

constexpr std::uint64_t kPoolBase = 0x100000;
constexpr std::uint64_t kHeap = 0x4000000;
constexpr std::uint16_t kRegion = 1;
constexpr net::NodeId kSwitchId = 100;

enum class Engine { kSpot, kP4 };

const char* EngineName(Engine e) {
  return e == Engine::kSpot ? "spot" : "p4";
}

// Harness that can run either engine behind the same client.
struct EngineHarness {
  EngineHarness(Engine engine, double loss_rate, std::uint64_t seed)
      : spot_machine(fabric.sim, 1) {
    pool_mr = fabric.memory_dev.RegisterMemory(kPoolBase, MiB(64));
    CowbirdClient::Config cc;
    cc.layout.base = 0x10000;
    cc.layout.threads = 2;
    cc.layout.meta_slots = 128;
    cc.layout.data_capacity = KiB(128);
    cc.layout.resp_capacity = KiB(128);
    client = std::make_unique<CowbirdClient>(fabric.compute_dev, cc);
    client->RegisterRegion(core::RegionInfo{kRegion, TestFabric::kMemoryId,
                                            kPoolBase, pool_mr->rkey,
                                            MiB(64)});
    if (engine == Engine::kSpot) {
      spot_agent = std::make_unique<spot::SpotAgent>(
          fabric.spot_dev, spot_machine, spot::SpotAgent::Config{});
      rdma::Device* memories[] = {&fabric.memory_dev};
      auto conn = spot::ConnectSpotEngine(fabric.spot_dev,
                                          fabric.compute_dev, memories);
      spot_agent->AddInstance(client->descriptor(), conn.to_compute,
                              conn.compute_cq, conn.to_memory,
                              conn.memory_cqs);
      spot_agent->Start();
    } else {
      p4::CowbirdP4Engine::Config ec;
      ec.switch_node_id = kSwitchId;
      p4_engine = std::make_unique<p4::CowbirdP4Engine>(fabric.sw, ec);
      auto conn = p4::ConnectP4Engine(*p4_engine, kSwitchId,
                                      fabric.compute_dev, fabric.memory_dev,
                                      0x800);
      p4_engine->AddInstance(client->descriptor(), conn);
      p4_engine->Start();
    }
    if (loss_rate > 0) {
      loss_rng = std::make_unique<Rng>(seed * 31 + 7);
      auto filter = [this, loss_rate](const net::Packet& p) {
        return rdma::LooksLikeRdma(p) && loss_rng->Bernoulli(loss_rate);
      };
      fabric.sw.EgressLink(fabric.compute_nic.switch_port())
          .set_drop_filter(filter);
      fabric.sw.EgressLink(fabric.memory_nic.switch_port())
          .set_drop_filter(filter);
      fabric.sw.EgressLink(fabric.spot_nic.switch_port())
          .set_drop_filter(filter);
    }
  }

  TestFabric fabric;
  sim::Machine spot_machine;
  const rdma::MemoryRegion* pool_mr = nullptr;
  std::unique_ptr<CowbirdClient> client;
  std::unique_ptr<spot::SpotAgent> spot_agent;
  std::unique_ptr<p4::CowbirdP4Engine> p4_engine;
  std::unique_ptr<Rng> loss_rng;
};

// ---------------------------------------------------------------------------
// Linearizability histories
// ---------------------------------------------------------------------------

struct LinearizabilityParam {
  Engine engine;
  double loss_rate;
  int slots;          // distinct addresses (small → frequent RAW conflicts)
  std::uint32_t len;  // record length
};

class LinearizabilityTest
    : public ::testing::TestWithParam<LinearizabilityParam> {};

// Random mixed read/write history against a few hot slots; every completed
// read must equal the last write *issued before it* to that slot (version
// stamp embedded in the payload). Writes and reads interleave freely with
// up to 8 in flight.
TEST_P(LinearizabilityTest, ReadsObserveLatestPrecedingWrite) {
  const LinearizabilityParam param = GetParam();
  const std::uint64_t seed = cowbird::testing::TestSeed(99);
  COWBIRD_SCOPED_SEED(seed);
  EngineHarness h(param.engine, param.loss_rate, seed);

  struct SlotState {
    std::uint64_t version = 0;  // version of the last *issued* write
  };
  std::vector<SlotState> slots(param.slots);
  std::uint64_t violations = 0;
  std::uint64_t reads_checked = 0;

  h.fabric.sim.Spawn([](EngineHarness& eh, const LinearizabilityParam& p,
                        std::uint64_t wl_seed,
                        std::vector<SlotState>& state,
                        std::uint64_t& bad,
                        std::uint64_t& checked) -> sim::Task<void> {
    sim::SimThread thread(eh.fabric.compute_machine, "app");
    auto& ctx = eh.client->thread(0);
    const core::PollId poll = ctx.PollCreate();
    Rng rng(wl_seed);

    struct PendingRead {
      ReqId id;
      int slot;
      std::uint64_t min_version;  // version at issue time
      std::uint64_t dest;
    };
    std::deque<PendingRead> pending;
    int writes_outstanding = 0;
    int dest_rr = 0;

    auto make_payload = [&p](int slot, std::uint64_t version,
                             std::vector<std::uint8_t>& out) {
      out.assign(p.len, static_cast<std::uint8_t>(version * 37 + slot));
      for (int b = 0; b < 8; ++b) {
        out[b] = static_cast<std::uint8_t>(version >> (8 * b));
      }
    };

    for (int i = 0; i < 400; ++i) {
      const int slot = static_cast<int>(rng.Below(state.size()));
      const std::uint64_t offset = static_cast<std::uint64_t>(slot) * 4096;
      if (rng.Bernoulli(0.4)) {
        // Write a new version.
        const std::uint64_t version = state[slot].version + 1;
        std::vector<std::uint8_t> payload;
        make_payload(slot, version, payload);
        eh.fabric.compute_mem.Write(kHeap, payload);
        auto id = co_await ctx.AsyncWrite(thread, kRegion, kHeap, offset,
                                          p.len);
        if (!id.has_value()) {
          --i;
          co_await thread.Idle(Micros(10));
          continue;
        }
        state[slot].version = version;  // issued
        ctx.PollAdd(poll, *id);
        ++writes_outstanding;
      } else {
        const std::uint64_t dest =
            kHeap + 0x100000 + (dest_rr++ % 64) * 4096;
        auto id = co_await ctx.AsyncRead(thread, kRegion, offset, dest,
                                         p.len);
        if (!id.has_value()) {
          --i;
          co_await thread.Idle(Micros(10));
          continue;
        }
        pending.push_back(
            PendingRead{*id, slot, state[slot].version, dest});
      }

      // Harvest: reads complete in issue order (per-type FIFO).
      for (;;) {
        auto done = co_await ctx.PollWait(thread, poll, 16, 0);
        // Check read completions through the per-thread retire counter.
        while (!pending.empty() &&
               ctx.reads_retired() >= pending.front().id.seq()) {
          const PendingRead& r = pending.front();
          const auto version =
              eh.fabric.compute_mem.ReadValue<std::uint64_t>(r.dest);
          ++checked;
          // Must be at least the version issued before the read, and not
          // beyond the latest issued (no time travel either way). Torn data
          // would produce an impossible version or mismatched filler.
          if (version < r.min_version || version > state[r.slot].version) {
            ++bad;
          } else if (version > 0) {
            bool filler_ok = true;
            for (std::uint32_t b = 8; b < p.len; ++b) {
              const auto expect = static_cast<std::uint8_t>(
                  version * 37 + static_cast<std::uint64_t>(r.slot));
              if (eh.fabric.compute_mem.ReadValue<std::uint8_t>(r.dest + b) !=
                  expect) {
                filler_ok = false;
                break;
              }
            }
            if (!filler_ok) ++bad;  // torn read
          }
          pending.pop_front();
        }
        writes_outstanding = static_cast<int>(ctx.writes_issued() -
                                              ctx.writes_retired());
        if (pending.size() + writes_outstanding < 8) break;
        if (done.empty()) co_await thread.Idle(Micros(5));
      }
    }
    // Drain.
    const Nanos deadline = eh.fabric.sim.Now() + Millis(50);
    while (!pending.empty() && eh.fabric.sim.Now() < deadline) {
      (void)co_await ctx.PollWait(thread, poll, 16, Micros(50));
      while (!pending.empty() &&
             ctx.reads_retired() >= pending.front().id.seq()) {
        const PendingRead& r = pending.front();
        const auto version =
            eh.fabric.compute_mem.ReadValue<std::uint64_t>(r.dest);
        ++checked;
        if (version < r.min_version || version > state[r.slot].version) {
          ++bad;
        }
        pending.pop_front();
      }
    }
    EXPECT_TRUE(pending.empty()) << "reads never completed";
    eh.fabric.sim.Halt();
  }(h, param, seed * 31 + 4242, slots, violations, reads_checked));

  h.fabric.sim.Run();
  EXPECT_EQ(violations, 0u);
  EXPECT_GT(reads_checked, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndFaults, LinearizabilityTest,
    ::testing::Values(
        LinearizabilityParam{Engine::kSpot, 0.0, 4, 128},
        LinearizabilityParam{Engine::kSpot, 0.0, 1, 512},
        LinearizabilityParam{Engine::kSpot, 0.01, 4, 128},
        LinearizabilityParam{Engine::kP4, 0.0, 4, 128},
        LinearizabilityParam{Engine::kP4, 0.0, 1, 512},
        LinearizabilityParam{Engine::kP4, 0.01, 4, 128}),
    [](const ::testing::TestParamInfo<LinearizabilityParam>& param_info) {
      return std::string(EngineName(param_info.param.engine)) + "_loss" +
             std::to_string(
                 static_cast<int>(param_info.param.loss_rate * 100)) +
             "_slots" + std::to_string(param_info.param.slots) + "_len" +
             std::to_string(param_info.param.len);
    });

// ---------------------------------------------------------------------------
// Transfer-size sweep: every size round-trips intact through both engines.
// ---------------------------------------------------------------------------

class TransferSizeTest
    : public ::testing::TestWithParam<std::tuple<Engine, std::uint32_t>> {};

TEST_P(TransferSizeTest, WriteThenReadRoundTrips) {
  const Engine engine = std::get<0>(GetParam());
  const std::uint32_t len = std::get<1>(GetParam());
  EngineHarness h(engine, 0.0, 1);

  Rng rng(len);
  std::vector<std::uint8_t> data(len);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
  h.fabric.compute_mem.Write(kHeap, data);

  bool ok = false;
  h.fabric.sim.Spawn([](EngineHarness& eh, std::uint32_t n,
                        bool& out) -> sim::Task<void> {
    sim::SimThread thread(eh.fabric.compute_machine, "app");
    auto& ctx = eh.client->thread(0);
    const core::PollId poll = ctx.PollCreate();
    auto w = co_await ctx.AsyncWrite(thread, kRegion, kHeap, 0x5000, n);
    EXPECT_TRUE(w.has_value());
    ctx.PollAdd(poll, *w);
    while ((co_await ctx.PollWait(thread, poll, 1, Millis(5))).empty()) {
    }
    auto r = co_await ctx.AsyncRead(thread, kRegion, 0x5000,
                                    kHeap + 0x100000, n);
    EXPECT_TRUE(r.has_value());
    ctx.PollAdd(poll, *r);
    while ((co_await ctx.PollWait(thread, poll, 1, Millis(5))).empty()) {
    }
    out = true;
    eh.fabric.sim.Halt();
  }(h, len, ok));
  h.fabric.sim.Run();
  ASSERT_TRUE(ok);

  std::vector<std::uint8_t> out(len);
  h.fabric.compute_mem.Read(kHeap + 0x100000, out);
  EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TransferSizeTest,
    ::testing::Combine(::testing::Values(Engine::kSpot, Engine::kP4),
                       ::testing::Values(1u, 8u, 100u, 1023u, 1024u, 1025u,
                                         2048u, 5000u, 16384u)),
    [](const ::testing::TestParamInfo<std::tuple<Engine, std::uint32_t>>&
           param_info) {
      return std::string(EngineName(std::get<0>(param_info.param))) + "_" +
             std::to_string(std::get<1>(param_info.param)) + "B";
    });

// ---------------------------------------------------------------------------
// Ring invariants under random operation sequences.
// ---------------------------------------------------------------------------

class RingPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RingPropertyTest, CursorInvariantsHoldUnderRandomOps) {
  const std::uint64_t seed = cowbird::testing::TestSeed(GetParam());
  COWBIRD_SCOPED_SEED(seed);
  Rng rng(seed);
  const std::uint64_t capacity = rng.Between(1, 64);
  RingCursors ring(capacity);
  std::uint64_t pushes = 0, pops = 0;
  for (int i = 0; i < 10000; ++i) {
    if (!ring.Full() && (ring.Empty() || rng.Bernoulli(0.55))) {
      const auto cursor = ring.Push();
      EXPECT_EQ(cursor, pushes);
      ++pushes;
    } else if (!ring.Empty()) {
      const auto cursor = ring.Pop();
      EXPECT_EQ(cursor, pops);
      ++pops;
    }
    EXPECT_LE(ring.Size(), capacity);
    EXPECT_EQ(ring.Size(), pushes - pops);
    EXPECT_EQ(ring.Free() + ring.Size(), capacity);
  }
}

TEST_P(RingPropertyTest, ByteRingSplitSpansCoverReservation) {
  const std::uint64_t seed = cowbird::testing::TestSeed(GetParam());
  COWBIRD_SCOPED_SEED(seed);
  Rng rng(seed * 31 + 5);
  const std::uint64_t capacity = rng.Between(64, 4096);
  ByteRing ring(capacity);
  std::deque<std::uint64_t> live;  // reservation lengths, FIFO
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t len = rng.Between(1, capacity / 2);
    if (ring.CanReserve(len) && rng.Bernoulli(0.6)) {
      const auto at = ring.Reserve(len);
      const auto split = ring.SplitSpan(at, len);
      EXPECT_EQ(split.first.len + split.second.len, len);
      EXPECT_LT(split.first.offset, capacity);
      EXPECT_LE(split.first.offset + split.first.len, capacity);
      if (split.second.len > 0) {
        EXPECT_EQ(split.second.offset, 0u);
        EXPECT_EQ(split.first.offset + split.first.len, capacity);
      }
      live.push_back(len);
    } else if (!live.empty()) {
      ring.Release(live.front());
      live.pop_front();
    }
    std::uint64_t total = 0;
    for (auto l : live) total += l;
    EXPECT_EQ(ring.Used(), total);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace cowbird
