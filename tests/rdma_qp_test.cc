#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "fabric_fixture.h"
#include "rdma/verbs.h"

namespace cowbird::rdma {
namespace {

using cowbird::testing::TestFabric;

std::vector<std::uint8_t> Pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
  return data;
}

class QpTest : public ::testing::Test {
 protected:
  QpTest() : pair_(ConnectQueuePairs(f_.compute_dev, f_.memory_dev)) {
    remote_mr_ = f_.memory_dev.RegisterMemory(0x100000, MiB(16));
  }

  TestFabric f_;
  QpPair pair_;
  const MemoryRegion* remote_mr_;
};

TEST_F(QpTest, SmallWriteLandsInRemoteMemory) {
  const auto data = Pattern(64, 1);
  f_.compute_mem.Write(0x5000, data);
  pair_.a->PostSend(SendWqe{WqeOp::kWrite, /*wr_id=*/7, /*laddr=*/0x5000,
                            remote_mr_->base + 128, remote_mr_->rkey, 64,
                            true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(64);
  f_.memory_mem.Read(remote_mr_->base + 128, out);
  EXPECT_EQ(out, data);
  auto cqe = pair_.a_send_cq->Pop();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->wr_id, 7u);
  EXPECT_EQ(cqe->opcode, CqeOpcode::kWrite);
  EXPECT_EQ(cqe->status, CqeStatus::kSuccess);
}

TEST_F(QpTest, SmallReadFetchesRemoteData) {
  const auto data = Pattern(256, 2);
  f_.memory_mem.Write(remote_mr_->base + 4096, data);
  pair_.a->PostSend(SendWqe{WqeOp::kRead, 9, /*laddr=*/0x9000,
                            remote_mr_->base + 4096, remote_mr_->rkey, 256,
                            true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(256);
  f_.compute_mem.Read(0x9000, out);
  EXPECT_EQ(out, data);
  auto cqe = pair_.a_send_cq->Pop();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->opcode, CqeOpcode::kRead);
}

TEST_F(QpTest, LargeTransfersSegmentAtMtu) {
  // 5000 bytes → 5 segments each way.
  const auto data = Pattern(5000, 3);
  f_.compute_mem.Write(0x5000, data);
  pair_.a->PostSend(SendWqe{WqeOp::kWrite, 1, 0x5000, remote_mr_->base,
                            remote_mr_->rkey, 5000, true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(5000);
  f_.memory_mem.Read(remote_mr_->base, out);
  EXPECT_EQ(out, data);
  // Write consumed ceil(5000/1024)=5 PSNs.
  EXPECT_EQ(pair_.a->next_psn(), 105u);  // started at 100

  pair_.a->PostSend(SendWqe{WqeOp::kRead, 2, 0x20000, remote_mr_->base,
                            remote_mr_->rkey, 5000, true});
  f_.sim.Run();
  std::vector<std::uint8_t> back(5000);
  f_.compute_mem.Read(0x20000, back);
  EXPECT_EQ(back, data);
  EXPECT_EQ(pair_.a->next_psn(), 110u);  // read consumed 5 response PSNs
}

TEST_F(QpTest, ManyOutstandingOpsCompleteInOrder) {
  // Mix reads and writes; CQEs must pop in post order (RC guarantee).
  for (std::uint64_t i = 0; i < 32; ++i) {
    const auto data = Pattern(128, 100 + i);
    if (i % 2 == 0) {
      f_.compute_mem.Write(0x5000 + i * 128, data);
      pair_.a->PostSend(SendWqe{WqeOp::kWrite, i, 0x5000 + i * 128,
                                remote_mr_->base + i * 128, remote_mr_->rkey,
                                128, true});
    } else {
      f_.memory_mem.Write(remote_mr_->base + MiB(1) + i * 128, data);
      pair_.a->PostSend(SendWqe{WqeOp::kRead, i, 0x8000 + i * 128,
                                remote_mr_->base + MiB(1) + i * 128,
                                remote_mr_->rkey, 128, true});
    }
  }
  f_.sim.Run();
  for (std::uint64_t i = 0; i < 32; ++i) {
    auto cqe = pair_.a_send_cq->Pop();
    ASSERT_TRUE(cqe.has_value());
    EXPECT_EQ(cqe->wr_id, i);
  }
  EXPECT_FALSE(pair_.a_send_cq->Pop().has_value());
}

TEST_F(QpTest, UnsignaledWqesProduceNoCqe) {
  const auto data = Pattern(64, 5);
  f_.compute_mem.Write(0x5000, data);
  pair_.a->PostSend(SendWqe{WqeOp::kWrite, 1, 0x5000, remote_mr_->base,
                            remote_mr_->rkey, 64, /*signaled=*/false});
  pair_.a->PostSend(SendWqe{WqeOp::kWrite, 2, 0x5000, remote_mr_->base + 64,
                            remote_mr_->rkey, 64, /*signaled=*/true});
  f_.sim.Run();
  auto cqe = pair_.a_send_cq->Pop();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->wr_id, 2u);
  EXPECT_FALSE(pair_.a_send_cq->Pop().has_value());
}

TEST_F(QpTest, InvalidRkeyCompletesWithError) {
  pair_.a->PostSend(SendWqe{WqeOp::kRead, 11, 0x9000, remote_mr_->base,
                            /*rkey=*/0xBADBAD, 64, true});
  f_.sim.Run();
  auto cqe = pair_.a_send_cq->Pop();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status, CqeStatus::kRemoteAccessError);
}

TEST_F(QpTest, OutOfRangeAccessCompletesWithError) {
  pair_.a->PostSend(SendWqe{WqeOp::kWrite, 12, 0x5000,
                            remote_mr_->base + remote_mr_->length - 8,
                            remote_mr_->rkey, 64, true});
  f_.sim.Run();
  auto cqe = pair_.a_send_cq->Pop();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status, CqeStatus::kRemoteAccessError);
}

TEST_F(QpTest, TwoSidedSendRecv) {
  const auto request = Pattern(2000, 6);  // 2 segments
  f_.compute_mem.Write(0x5000, request);
  pair_.b->PostRecv(RecvWqe{77, 0x300000, 4096});
  pair_.a->PostSend(
      SendWqe{WqeOp::kSend, 13, 0x5000, 0, 0, 2000, true});
  f_.sim.Run();
  auto recv_cqe = pair_.b_recv_cq->Pop();
  ASSERT_TRUE(recv_cqe.has_value());
  EXPECT_EQ(recv_cqe->wr_id, 77u);
  EXPECT_EQ(recv_cqe->opcode, CqeOpcode::kRecv);
  EXPECT_EQ(recv_cqe->byte_len, 2000u);
  std::vector<std::uint8_t> out(2000);
  f_.memory_mem.Read(0x300000, out);
  EXPECT_EQ(out, request);
  auto send_cqe = pair_.a_send_cq->Pop();
  ASSERT_TRUE(send_cqe.has_value());
  EXPECT_EQ(send_cqe->wr_id, 13u);
}

TEST_F(QpTest, SendBeforeRecvPostedRecoversViaRnr) {
  const auto request = Pattern(100, 7);
  f_.compute_mem.Write(0x5000, request);
  pair_.a->PostSend(SendWqe{WqeOp::kSend, 14, 0x5000, 0, 0, 100, true});
  // Post the RECV well after the SEND has been NAKed.
  f_.sim.ScheduleAt(Micros(40), [&] {
    pair_.b->PostRecv(RecvWqe{88, 0x300000, 4096});
  });
  f_.sim.Run();
  auto recv_cqe = pair_.b_recv_cq->Pop();
  ASSERT_TRUE(recv_cqe.has_value());
  EXPECT_EQ(recv_cqe->wr_id, 88u);
  std::vector<std::uint8_t> out(100);
  f_.memory_mem.Read(0x300000, out);
  EXPECT_EQ(out, request);
  EXPECT_GT(pair_.a->retransmissions(), 0u);
}

// ---------------------------------------------------------------------------
// Loss recovery (Go-Back-N)
// ---------------------------------------------------------------------------

class QpLossTest : public QpTest {
 protected:
  // Installs a drop filter on the switch→memory egress link that drops the
  // nth RDMA data packet it sees.
  void DropNthTowardMemory(int n) {
    auto counter = std::make_shared<int>(0);
    f_.sw.EgressLink(f_.memory_nic.switch_port())
        .set_drop_filter([counter, n](const net::Packet& p) {
          if (!LooksLikeRdma(p)) return false;
          return ++*counter == n;
        });
  }
  void DropNthTowardCompute(int n) {
    auto counter = std::make_shared<int>(0);
    f_.sw.EgressLink(f_.compute_nic.switch_port())
        .set_drop_filter([counter, n](const net::Packet& p) {
          if (!LooksLikeRdma(p)) return false;
          return ++*counter == n;
        });
  }
};

TEST_F(QpLossTest, WriteRecoversFromLostDataPacket) {
  const auto data = Pattern(4000, 8);
  f_.compute_mem.Write(0x5000, data);
  DropNthTowardMemory(2);  // lose WRITE_MIDDLE
  pair_.a->PostSend(SendWqe{WqeOp::kWrite, 1, 0x5000, remote_mr_->base,
                            remote_mr_->rkey, 4000, true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(4000);
  f_.memory_mem.Read(remote_mr_->base, out);
  EXPECT_EQ(out, data);
  EXPECT_TRUE(pair_.a_send_cq->Pop().has_value());
  EXPECT_GT(pair_.a->retransmissions(), 0u);
}

TEST_F(QpLossTest, WriteRecoversFromLostAck) {
  const auto data = Pattern(512, 9);
  f_.compute_mem.Write(0x5000, data);
  DropNthTowardCompute(1);  // the ACK
  pair_.a->PostSend(SendWqe{WqeOp::kWrite, 1, 0x5000, remote_mr_->base,
                            remote_mr_->rkey, 512, true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(512);
  f_.memory_mem.Read(remote_mr_->base, out);
  EXPECT_EQ(out, data);
  EXPECT_TRUE(pair_.a_send_cq->Pop().has_value());
}

TEST_F(QpLossTest, ReadRecoversFromLostRequest) {
  const auto data = Pattern(256, 10);
  f_.memory_mem.Write(remote_mr_->base, data);
  DropNthTowardMemory(1);  // the READ_REQUEST itself
  pair_.a->PostSend(SendWqe{WqeOp::kRead, 1, 0x9000, remote_mr_->base,
                            remote_mr_->rkey, 256, true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(256);
  f_.compute_mem.Read(0x9000, out);
  EXPECT_EQ(out, data);
}

TEST_F(QpLossTest, ReadRecoversFromLostMiddleResponse) {
  const auto data = Pattern(3 * kPathMtu, 11);
  f_.memory_mem.Write(remote_mr_->base, data);
  DropNthTowardCompute(2);  // READ_RESP_MIDDLE
  pair_.a->PostSend(
      SendWqe{WqeOp::kRead, 1, 0x9000, remote_mr_->base, remote_mr_->rkey,
              static_cast<std::uint32_t>(3 * kPathMtu), true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(3 * kPathMtu);
  f_.compute_mem.Read(0x9000, out);
  EXPECT_EQ(out, data);
  EXPECT_GT(pair_.a->retransmissions(), 0u);
}

TEST_F(QpLossTest, RandomLossManyOpsAllComplete) {
  // 5% random loss in both directions; 100 mixed operations must all
  // complete with intact data.
  auto rng = std::make_shared<Rng>(42);
  auto loss = [rng](const net::Packet& p) {
    return LooksLikeRdma(p) && rng->Bernoulli(0.05);
  };
  f_.sw.EgressLink(f_.memory_nic.switch_port()).set_drop_filter(loss);
  f_.sw.EgressLink(f_.compute_nic.switch_port()).set_drop_filter(loss);

  std::vector<std::vector<std::uint8_t>> blobs;
  for (std::uint64_t i = 0; i < 100; ++i) {
    blobs.push_back(Pattern(777, 1000 + i));
    if (i % 2 == 0) {
      f_.compute_mem.Write(0x40000 + i * 1024, blobs.back());
      pair_.a->PostSend(SendWqe{WqeOp::kWrite, i, 0x40000 + i * 1024,
                                remote_mr_->base + i * 1024,
                                remote_mr_->rkey, 777, true});
    } else {
      f_.memory_mem.Write(remote_mr_->base + MiB(4) + i * 1024,
                          blobs.back());
      pair_.a->PostSend(SendWqe{WqeOp::kRead, i, 0x80000 + i * 1024,
                                remote_mr_->base + MiB(4) + i * 1024,
                                remote_mr_->rkey, 777, true});
    }
  }
  f_.sim.Run();
  std::size_t completions = 0;
  while (auto cqe = pair_.a_send_cq->Pop()) {
    EXPECT_EQ(cqe->status, CqeStatus::kSuccess);
    ++completions;
  }
  EXPECT_EQ(completions, 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> out(777);
    if (i % 2 == 0) {
      f_.memory_mem.Read(remote_mr_->base + i * 1024, out);
    } else {
      f_.compute_mem.Read(0x80000 + i * 1024, out);
    }
    EXPECT_EQ(out, blobs[i]) << "op " << i;
  }
}

// ---------------------------------------------------------------------------
// Duplication and reordering (Go-Back-N under faulty delivery)
// ---------------------------------------------------------------------------

class QpFaultTest : public QpTest {
 protected:
  // Applies `action` to the nth RDMA packet crossing the given egress link.
  static void FaultNth(net::Link& link, int n, net::FaultAction action) {
    auto counter = std::make_shared<int>(0);
    link.set_fault_filter([counter, n, action](const net::Packet& p) {
      if (LooksLikeRdma(p) && ++*counter == n) return action;
      return net::FaultAction{};
    });
  }
  net::Link& TowardMemory() {
    return f_.sw.EgressLink(f_.memory_nic.switch_port());
  }
  net::Link& TowardCompute() {
    return f_.sw.EgressLink(f_.compute_nic.switch_port());
  }
  // Long enough for later arrivals to overtake the held packet (several
  // serialization times plus propagation), matching the chaos plan default.
  static constexpr Nanos kReorderHold = Micros(5);
};

TEST_F(QpFaultTest, WriteSurvivesDuplicatedAck) {
  const auto data = Pattern(512, 20);
  f_.compute_mem.Write(0x5000, data);
  // Packet 1 toward compute is the ACK; deliver it three times. The extra
  // copies no longer cover any inflight entry and must be ignored.
  FaultNth(TowardCompute(), 1, net::FaultAction{.duplicate = 2});
  pair_.a->PostSend(SendWqe{WqeOp::kWrite, 1, 0x5000, remote_mr_->base,
                            remote_mr_->rkey, 512, true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(512);
  f_.memory_mem.Read(remote_mr_->base, out);
  EXPECT_EQ(out, data);
  auto cqe = pair_.a_send_cq->Pop();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status, CqeStatus::kSuccess);
  // Exactly one completion despite three ACK deliveries. The counter tracks
  // extra copies, not faulted packets.
  EXPECT_FALSE(pair_.a_send_cq->Pop().has_value());
  EXPECT_EQ(TowardCompute().faults_duplicated(), 2u);
}

TEST_F(QpFaultTest, DuplicatedWriteDataIsNotReapplied) {
  const auto data = Pattern(3 * kPathMtu, 21);
  f_.compute_mem.Write(0x5000, data);
  // Duplicate WRITE_FIRST toward memory: the copy arrives with psn < epsn,
  // so the responder re-ACKs it without touching memory. The stale ACK the
  // duplicate provokes must in turn be ignored by the requester.
  FaultNth(TowardMemory(), 1, net::FaultAction{.duplicate = 1});
  pair_.a->PostSend(
      SendWqe{WqeOp::kWrite, 1, 0x5000, remote_mr_->base, remote_mr_->rkey,
              static_cast<std::uint32_t>(3 * kPathMtu), true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(3 * kPathMtu);
  f_.memory_mem.Read(remote_mr_->base, out);
  EXPECT_EQ(out, data);
  auto cqe = pair_.a_send_cq->Pop();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status, CqeStatus::kSuccess);
  EXPECT_FALSE(pair_.a_send_cq->Pop().has_value());
  EXPECT_EQ(TowardMemory().faults_duplicated(), 1u);
}

TEST_F(QpFaultTest, ReadSurvivesDuplicatedResponse) {
  const auto data = Pattern(3 * kPathMtu, 22);
  f_.memory_mem.Write(remote_mr_->base, data);
  // Duplicate READ_RESP_MIDDLE toward compute: the copy's PSN is behind the
  // requester's expected response PSN and is discarded.
  FaultNth(TowardCompute(), 2, net::FaultAction{.duplicate = 1});
  pair_.a->PostSend(
      SendWqe{WqeOp::kRead, 1, 0x9000, remote_mr_->base, remote_mr_->rkey,
              static_cast<std::uint32_t>(3 * kPathMtu), true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(3 * kPathMtu);
  f_.compute_mem.Read(0x9000, out);
  EXPECT_EQ(out, data);
  auto cqe = pair_.a_send_cq->Pop();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status, CqeStatus::kSuccess);
  EXPECT_FALSE(pair_.a_send_cq->Pop().has_value());
  EXPECT_EQ(TowardCompute().faults_duplicated(), 1u);
}

TEST_F(QpFaultTest, WriteSurvivesReorderedAcks) {
  // Two single-segment writes produce two ACKs. Hold the first ACK back so
  // the second (cumulative, higher PSN) overtakes it and completes both
  // writes; the late stale ACK must then be ignored.
  const auto a = Pattern(256, 23);
  const auto b = Pattern(256, 24);
  f_.compute_mem.Write(0x5000, a);
  f_.compute_mem.Write(0x5100, b);
  FaultNth(TowardCompute(), 1,
           net::FaultAction{.delay = kReorderHold, .reorder = true});
  pair_.a->PostSend(SendWqe{WqeOp::kWrite, 1, 0x5000, remote_mr_->base,
                            remote_mr_->rkey, 256, true});
  pair_.a->PostSend(SendWqe{WqeOp::kWrite, 2, 0x5100, remote_mr_->base + 256,
                            remote_mr_->rkey, 256, true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(256);
  f_.memory_mem.Read(remote_mr_->base, out);
  EXPECT_EQ(out, a);
  f_.memory_mem.Read(remote_mr_->base + 256, out);
  EXPECT_EQ(out, b);
  // Both CQEs, in post order, exactly once.
  auto cqe = pair_.a_send_cq->Pop();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->wr_id, 1u);
  cqe = pair_.a_send_cq->Pop();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->wr_id, 2u);
  EXPECT_FALSE(pair_.a_send_cq->Pop().has_value());
  EXPECT_EQ(TowardCompute().faults_reordered(), 1u);
}

TEST_F(QpFaultTest, ReadSurvivesReorderedResponses) {
  const auto data = Pattern(3 * kPathMtu, 25);
  f_.memory_mem.Write(remote_mr_->base, data);
  // Hold READ_RESP_FIRST so later response segments arrive ahead of it. The
  // requester sees a PSN gap, discards the out-of-order segments, and the
  // retransmit timer re-issues the read — Go-Back-N, not reassembly.
  FaultNth(TowardCompute(), 1,
           net::FaultAction{.delay = kReorderHold, .reorder = true});
  pair_.a->PostSend(
      SendWqe{WqeOp::kRead, 1, 0x9000, remote_mr_->base, remote_mr_->rkey,
              static_cast<std::uint32_t>(3 * kPathMtu), true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(3 * kPathMtu);
  f_.compute_mem.Read(0x9000, out);
  EXPECT_EQ(out, data);
  auto cqe = pair_.a_send_cq->Pop();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status, CqeStatus::kSuccess);
  EXPECT_FALSE(pair_.a_send_cq->Pop().has_value());
  EXPECT_EQ(TowardCompute().faults_reordered(), 1u);
}

TEST_F(QpFaultTest, RandomDupReorderLossManyOpsAllComplete) {
  // Mixed duplication, reordering, and loss in both directions; 100 mixed
  // operations must all complete exactly once with intact data.
  auto rng = std::make_shared<Rng>(77);
  auto fault = [rng](const net::Packet& p) {
    net::FaultAction action;
    if (!LooksLikeRdma(p)) return action;
    const double u = rng->NextDouble();
    if (u < 0.02) {
      action.drop = true;
    } else if (u < 0.05) {
      action.duplicate = 1 + static_cast<int>(rng->Next() % 2);
    } else if (u < 0.08) {
      action.delay = kReorderHold;
      action.reorder = true;
    }
    return action;
  };
  TowardMemory().set_fault_filter(fault);
  TowardCompute().set_fault_filter(fault);

  std::vector<std::vector<std::uint8_t>> blobs;
  for (std::uint64_t i = 0; i < 100; ++i) {
    blobs.push_back(Pattern(777, 2000 + i));
    if (i % 2 == 0) {
      f_.compute_mem.Write(0x40000 + i * 1024, blobs.back());
      pair_.a->PostSend(SendWqe{WqeOp::kWrite, i, 0x40000 + i * 1024,
                                remote_mr_->base + i * 1024,
                                remote_mr_->rkey, 777, true});
    } else {
      f_.memory_mem.Write(remote_mr_->base + MiB(4) + i * 1024,
                          blobs.back());
      pair_.a->PostSend(SendWqe{WqeOp::kRead, i, 0x80000 + i * 1024,
                                remote_mr_->base + MiB(4) + i * 1024,
                                remote_mr_->rkey, 777, true});
    }
  }
  f_.sim.Run();
  std::size_t completions = 0;
  while (auto cqe = pair_.a_send_cq->Pop()) {
    EXPECT_EQ(cqe->status, CqeStatus::kSuccess);
    EXPECT_EQ(cqe->wr_id, completions);  // RC: in post order, exactly once
    ++completions;
  }
  EXPECT_EQ(completions, 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> out(777);
    if (i % 2 == 0) {
      f_.memory_mem.Read(remote_mr_->base + i * 1024, out);
    } else {
      f_.compute_mem.Read(0x80000 + i * 1024, out);
    }
    EXPECT_EQ(out, blobs[i]) << "op " << i;
  }
  // The run actually exercised every fault kind.
  EXPECT_GT(TowardMemory().faults_dropped() + TowardCompute().faults_dropped(),
            0u);
  EXPECT_GT(TowardMemory().faults_duplicated() +
                TowardCompute().faults_duplicated(),
            0u);
  EXPECT_GT(TowardMemory().faults_reordered() +
                TowardCompute().faults_reordered(),
            0u);
}

// ---------------------------------------------------------------------------
// Charged verbs
// ---------------------------------------------------------------------------

TEST_F(QpTest, VerbWrappersChargeCommunicationTime) {
  CostModel costs;
  sim::SimThread thread(f_.compute_machine, "app");
  const auto data = Pattern(64, 12);
  f_.memory_mem.Write(remote_mr_->base, data);

  bool done = false;
  f_.sim.Spawn([](QueuePair& qp, CompletionQueue& cq, const MemoryRegion* mr,
                  sim::SimThread& thr, const CostModel& cm,
                  bool& flag) -> sim::Task<void> {
    co_await PostSendVerb(
        thr, cm, qp,
        SendWqe{WqeOp::kRead, 1, 0x9000, mr->base, mr->rkey, 64, true});
    const Cqe cqe = co_await BusyPollCqVerb(thr, cm, cq);
    flag = cqe.status == CqeStatus::kSuccess;
  }(*pair_.a, *pair_.a_send_cq, remote_mr_, thread, costs, done));
  f_.sim.Run();

  EXPECT_TRUE(done);
  // Post charged exactly PostTotal; busy poll charged at least one PollTotal.
  EXPECT_GE(thread.TimeIn(sim::CpuCategory::kCommunication),
            costs.PostTotal() + costs.PollTotal());
  EXPECT_EQ(thread.TimeIn(sim::CpuCategory::kCompute), 0);
}

}  // namespace
}  // namespace cowbird::rdma
