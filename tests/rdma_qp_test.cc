#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "fabric_fixture.h"
#include "rdma/verbs.h"

namespace cowbird::rdma {
namespace {

using cowbird::testing::TestFabric;

std::vector<std::uint8_t> Pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
  return data;
}

class QpTest : public ::testing::Test {
 protected:
  QpTest() : pair_(ConnectQueuePairs(f_.compute_dev, f_.memory_dev)) {
    remote_mr_ = f_.memory_dev.RegisterMemory(0x100000, MiB(16));
  }

  TestFabric f_;
  QpPair pair_;
  const MemoryRegion* remote_mr_;
};

TEST_F(QpTest, SmallWriteLandsInRemoteMemory) {
  const auto data = Pattern(64, 1);
  f_.compute_mem.Write(0x5000, data);
  pair_.a->PostSend(SendWqe{WqeOp::kWrite, /*wr_id=*/7, /*laddr=*/0x5000,
                            remote_mr_->base + 128, remote_mr_->rkey, 64,
                            true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(64);
  f_.memory_mem.Read(remote_mr_->base + 128, out);
  EXPECT_EQ(out, data);
  auto cqe = pair_.a_send_cq->Pop();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->wr_id, 7u);
  EXPECT_EQ(cqe->opcode, CqeOpcode::kWrite);
  EXPECT_EQ(cqe->status, CqeStatus::kSuccess);
}

TEST_F(QpTest, SmallReadFetchesRemoteData) {
  const auto data = Pattern(256, 2);
  f_.memory_mem.Write(remote_mr_->base + 4096, data);
  pair_.a->PostSend(SendWqe{WqeOp::kRead, 9, /*laddr=*/0x9000,
                            remote_mr_->base + 4096, remote_mr_->rkey, 256,
                            true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(256);
  f_.compute_mem.Read(0x9000, out);
  EXPECT_EQ(out, data);
  auto cqe = pair_.a_send_cq->Pop();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->opcode, CqeOpcode::kRead);
}

TEST_F(QpTest, LargeTransfersSegmentAtMtu) {
  // 5000 bytes → 5 segments each way.
  const auto data = Pattern(5000, 3);
  f_.compute_mem.Write(0x5000, data);
  pair_.a->PostSend(SendWqe{WqeOp::kWrite, 1, 0x5000, remote_mr_->base,
                            remote_mr_->rkey, 5000, true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(5000);
  f_.memory_mem.Read(remote_mr_->base, out);
  EXPECT_EQ(out, data);
  // Write consumed ceil(5000/1024)=5 PSNs.
  EXPECT_EQ(pair_.a->next_psn(), 105u);  // started at 100

  pair_.a->PostSend(SendWqe{WqeOp::kRead, 2, 0x20000, remote_mr_->base,
                            remote_mr_->rkey, 5000, true});
  f_.sim.Run();
  std::vector<std::uint8_t> back(5000);
  f_.compute_mem.Read(0x20000, back);
  EXPECT_EQ(back, data);
  EXPECT_EQ(pair_.a->next_psn(), 110u);  // read consumed 5 response PSNs
}

TEST_F(QpTest, ManyOutstandingOpsCompleteInOrder) {
  // Mix reads and writes; CQEs must pop in post order (RC guarantee).
  for (std::uint64_t i = 0; i < 32; ++i) {
    const auto data = Pattern(128, 100 + i);
    if (i % 2 == 0) {
      f_.compute_mem.Write(0x5000 + i * 128, data);
      pair_.a->PostSend(SendWqe{WqeOp::kWrite, i, 0x5000 + i * 128,
                                remote_mr_->base + i * 128, remote_mr_->rkey,
                                128, true});
    } else {
      f_.memory_mem.Write(remote_mr_->base + MiB(1) + i * 128, data);
      pair_.a->PostSend(SendWqe{WqeOp::kRead, i, 0x8000 + i * 128,
                                remote_mr_->base + MiB(1) + i * 128,
                                remote_mr_->rkey, 128, true});
    }
  }
  f_.sim.Run();
  for (std::uint64_t i = 0; i < 32; ++i) {
    auto cqe = pair_.a_send_cq->Pop();
    ASSERT_TRUE(cqe.has_value());
    EXPECT_EQ(cqe->wr_id, i);
  }
  EXPECT_FALSE(pair_.a_send_cq->Pop().has_value());
}

TEST_F(QpTest, UnsignaledWqesProduceNoCqe) {
  const auto data = Pattern(64, 5);
  f_.compute_mem.Write(0x5000, data);
  pair_.a->PostSend(SendWqe{WqeOp::kWrite, 1, 0x5000, remote_mr_->base,
                            remote_mr_->rkey, 64, /*signaled=*/false});
  pair_.a->PostSend(SendWqe{WqeOp::kWrite, 2, 0x5000, remote_mr_->base + 64,
                            remote_mr_->rkey, 64, /*signaled=*/true});
  f_.sim.Run();
  auto cqe = pair_.a_send_cq->Pop();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->wr_id, 2u);
  EXPECT_FALSE(pair_.a_send_cq->Pop().has_value());
}

TEST_F(QpTest, InvalidRkeyCompletesWithError) {
  pair_.a->PostSend(SendWqe{WqeOp::kRead, 11, 0x9000, remote_mr_->base,
                            /*rkey=*/0xBADBAD, 64, true});
  f_.sim.Run();
  auto cqe = pair_.a_send_cq->Pop();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status, CqeStatus::kRemoteAccessError);
}

TEST_F(QpTest, OutOfRangeAccessCompletesWithError) {
  pair_.a->PostSend(SendWqe{WqeOp::kWrite, 12, 0x5000,
                            remote_mr_->base + remote_mr_->length - 8,
                            remote_mr_->rkey, 64, true});
  f_.sim.Run();
  auto cqe = pair_.a_send_cq->Pop();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status, CqeStatus::kRemoteAccessError);
}

TEST_F(QpTest, TwoSidedSendRecv) {
  const auto request = Pattern(2000, 6);  // 2 segments
  f_.compute_mem.Write(0x5000, request);
  pair_.b->PostRecv(RecvWqe{77, 0x300000, 4096});
  pair_.a->PostSend(
      SendWqe{WqeOp::kSend, 13, 0x5000, 0, 0, 2000, true});
  f_.sim.Run();
  auto recv_cqe = pair_.b_recv_cq->Pop();
  ASSERT_TRUE(recv_cqe.has_value());
  EXPECT_EQ(recv_cqe->wr_id, 77u);
  EXPECT_EQ(recv_cqe->opcode, CqeOpcode::kRecv);
  EXPECT_EQ(recv_cqe->byte_len, 2000u);
  std::vector<std::uint8_t> out(2000);
  f_.memory_mem.Read(0x300000, out);
  EXPECT_EQ(out, request);
  auto send_cqe = pair_.a_send_cq->Pop();
  ASSERT_TRUE(send_cqe.has_value());
  EXPECT_EQ(send_cqe->wr_id, 13u);
}

TEST_F(QpTest, SendBeforeRecvPostedRecoversViaRnr) {
  const auto request = Pattern(100, 7);
  f_.compute_mem.Write(0x5000, request);
  pair_.a->PostSend(SendWqe{WqeOp::kSend, 14, 0x5000, 0, 0, 100, true});
  // Post the RECV well after the SEND has been NAKed.
  f_.sim.ScheduleAt(Micros(40), [&] {
    pair_.b->PostRecv(RecvWqe{88, 0x300000, 4096});
  });
  f_.sim.Run();
  auto recv_cqe = pair_.b_recv_cq->Pop();
  ASSERT_TRUE(recv_cqe.has_value());
  EXPECT_EQ(recv_cqe->wr_id, 88u);
  std::vector<std::uint8_t> out(100);
  f_.memory_mem.Read(0x300000, out);
  EXPECT_EQ(out, request);
  EXPECT_GT(pair_.a->retransmissions(), 0u);
}

// ---------------------------------------------------------------------------
// Loss recovery (Go-Back-N)
// ---------------------------------------------------------------------------

class QpLossTest : public QpTest {
 protected:
  // Installs a drop filter on the switch→memory egress link that drops the
  // nth RDMA data packet it sees.
  void DropNthTowardMemory(int n) {
    auto counter = std::make_shared<int>(0);
    f_.sw.EgressLink(f_.memory_nic.switch_port())
        .set_drop_filter([counter, n](const net::Packet& p) {
          if (!LooksLikeRdma(p)) return false;
          return ++*counter == n;
        });
  }
  void DropNthTowardCompute(int n) {
    auto counter = std::make_shared<int>(0);
    f_.sw.EgressLink(f_.compute_nic.switch_port())
        .set_drop_filter([counter, n](const net::Packet& p) {
          if (!LooksLikeRdma(p)) return false;
          return ++*counter == n;
        });
  }
};

TEST_F(QpLossTest, WriteRecoversFromLostDataPacket) {
  const auto data = Pattern(4000, 8);
  f_.compute_mem.Write(0x5000, data);
  DropNthTowardMemory(2);  // lose WRITE_MIDDLE
  pair_.a->PostSend(SendWqe{WqeOp::kWrite, 1, 0x5000, remote_mr_->base,
                            remote_mr_->rkey, 4000, true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(4000);
  f_.memory_mem.Read(remote_mr_->base, out);
  EXPECT_EQ(out, data);
  EXPECT_TRUE(pair_.a_send_cq->Pop().has_value());
  EXPECT_GT(pair_.a->retransmissions(), 0u);
}

TEST_F(QpLossTest, WriteRecoversFromLostAck) {
  const auto data = Pattern(512, 9);
  f_.compute_mem.Write(0x5000, data);
  DropNthTowardCompute(1);  // the ACK
  pair_.a->PostSend(SendWqe{WqeOp::kWrite, 1, 0x5000, remote_mr_->base,
                            remote_mr_->rkey, 512, true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(512);
  f_.memory_mem.Read(remote_mr_->base, out);
  EXPECT_EQ(out, data);
  EXPECT_TRUE(pair_.a_send_cq->Pop().has_value());
}

TEST_F(QpLossTest, ReadRecoversFromLostRequest) {
  const auto data = Pattern(256, 10);
  f_.memory_mem.Write(remote_mr_->base, data);
  DropNthTowardMemory(1);  // the READ_REQUEST itself
  pair_.a->PostSend(SendWqe{WqeOp::kRead, 1, 0x9000, remote_mr_->base,
                            remote_mr_->rkey, 256, true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(256);
  f_.compute_mem.Read(0x9000, out);
  EXPECT_EQ(out, data);
}

TEST_F(QpLossTest, ReadRecoversFromLostMiddleResponse) {
  const auto data = Pattern(3 * kPathMtu, 11);
  f_.memory_mem.Write(remote_mr_->base, data);
  DropNthTowardCompute(2);  // READ_RESP_MIDDLE
  pair_.a->PostSend(
      SendWqe{WqeOp::kRead, 1, 0x9000, remote_mr_->base, remote_mr_->rkey,
              static_cast<std::uint32_t>(3 * kPathMtu), true});
  f_.sim.Run();
  std::vector<std::uint8_t> out(3 * kPathMtu);
  f_.compute_mem.Read(0x9000, out);
  EXPECT_EQ(out, data);
  EXPECT_GT(pair_.a->retransmissions(), 0u);
}

TEST_F(QpLossTest, RandomLossManyOpsAllComplete) {
  // 5% random loss in both directions; 100 mixed operations must all
  // complete with intact data.
  auto rng = std::make_shared<Rng>(42);
  auto loss = [rng](const net::Packet& p) {
    return LooksLikeRdma(p) && rng->Bernoulli(0.05);
  };
  f_.sw.EgressLink(f_.memory_nic.switch_port()).set_drop_filter(loss);
  f_.sw.EgressLink(f_.compute_nic.switch_port()).set_drop_filter(loss);

  std::vector<std::vector<std::uint8_t>> blobs;
  for (std::uint64_t i = 0; i < 100; ++i) {
    blobs.push_back(Pattern(777, 1000 + i));
    if (i % 2 == 0) {
      f_.compute_mem.Write(0x40000 + i * 1024, blobs.back());
      pair_.a->PostSend(SendWqe{WqeOp::kWrite, i, 0x40000 + i * 1024,
                                remote_mr_->base + i * 1024,
                                remote_mr_->rkey, 777, true});
    } else {
      f_.memory_mem.Write(remote_mr_->base + MiB(4) + i * 1024,
                          blobs.back());
      pair_.a->PostSend(SendWqe{WqeOp::kRead, i, 0x80000 + i * 1024,
                                remote_mr_->base + MiB(4) + i * 1024,
                                remote_mr_->rkey, 777, true});
    }
  }
  f_.sim.Run();
  std::size_t completions = 0;
  while (auto cqe = pair_.a_send_cq->Pop()) {
    EXPECT_EQ(cqe->status, CqeStatus::kSuccess);
    ++completions;
  }
  EXPECT_EQ(completions, 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> out(777);
    if (i % 2 == 0) {
      f_.memory_mem.Read(remote_mr_->base + i * 1024, out);
    } else {
      f_.compute_mem.Read(0x80000 + i * 1024, out);
    }
    EXPECT_EQ(out, blobs[i]) << "op " << i;
  }
}

// ---------------------------------------------------------------------------
// Charged verbs
// ---------------------------------------------------------------------------

TEST_F(QpTest, VerbWrappersChargeCommunicationTime) {
  CostModel costs;
  sim::SimThread thread(f_.compute_machine, "app");
  const auto data = Pattern(64, 12);
  f_.memory_mem.Write(remote_mr_->base, data);

  bool done = false;
  f_.sim.Spawn([](QueuePair& qp, CompletionQueue& cq, const MemoryRegion* mr,
                  sim::SimThread& thr, const CostModel& cm,
                  bool& flag) -> sim::Task<void> {
    co_await PostSendVerb(
        thr, cm, qp,
        SendWqe{WqeOp::kRead, 1, 0x9000, mr->base, mr->rkey, 64, true});
    const Cqe cqe = co_await BusyPollCqVerb(thr, cm, cq);
    flag = cqe.status == CqeStatus::kSuccess;
  }(*pair_.a, *pair_.a_send_cq, remote_mr_, thread, costs, done));
  f_.sim.Run();

  EXPECT_TRUE(done);
  // Post charged exactly PostTotal; busy poll charged at least one PollTotal.
  EXPECT_GE(thread.TimeIn(sim::CpuCategory::kCommunication),
            costs.PostTotal() + costs.PollTotal());
  EXPECT_EQ(thread.TimeIn(sim::CpuCategory::kCompute), 0);
}

}  // namespace
}  // namespace cowbird::rdma
