#include <gtest/gtest.h>

#include <vector>

#include "net/packet.h"
#include "rdma/wire.h"

namespace cowbird::rdma {
namespace {

TEST(Wire, BthRoundTrip) {
  Bth h;
  h.opcode = Opcode::kReadRequest;
  h.ack_request = true;
  h.solicited = true;
  h.dest_qp = 0x00ABCDEF;
  h.psn = 0x00123456;
  std::vector<std::uint8_t> buf(kBthBytes);
  h.Serialize(buf);
  const Bth parsed = Bth::Parse(buf);
  EXPECT_EQ(parsed.opcode, h.opcode);
  EXPECT_EQ(parsed.ack_request, true);
  EXPECT_EQ(parsed.solicited, true);
  EXPECT_EQ(parsed.dest_qp, h.dest_qp);
  EXPECT_EQ(parsed.psn, h.psn);
}

TEST(Wire, RethRoundTrip) {
  Reth h{0xDEADBEEF12345678ull, 0xCAFEBABE, 0x10000};
  std::vector<std::uint8_t> buf(kRethBytes);
  h.Serialize(buf);
  const Reth parsed = Reth::Parse(buf);
  EXPECT_EQ(parsed.vaddr, h.vaddr);
  EXPECT_EQ(parsed.rkey, h.rkey);
  EXPECT_EQ(parsed.dma_length, h.dma_length);
}

TEST(Wire, AethRoundTrip) {
  Aeth h{kSyndromeNakSequenceError, 0x00FEDCBA};
  std::vector<std::uint8_t> buf(kAethBytes);
  h.Serialize(buf);
  const Aeth parsed = Aeth::Parse(buf);
  EXPECT_EQ(parsed.syndrome, h.syndrome);
  EXPECT_EQ(parsed.msn, h.msn);
}

TEST(Wire, HeaderPresenceMatchesTable4) {
  // Table 4: RETH on read request + write request; AETH on read response +
  // acknowledgment.
  EXPECT_TRUE(HasReth(Opcode::kReadRequest));
  EXPECT_TRUE(HasReth(Opcode::kWriteFirst));
  EXPECT_TRUE(HasReth(Opcode::kWriteOnly));
  EXPECT_FALSE(HasReth(Opcode::kWriteMiddle));
  EXPECT_FALSE(HasReth(Opcode::kWriteLast));
  EXPECT_TRUE(HasAeth(Opcode::kReadResponseFirst));
  EXPECT_TRUE(HasAeth(Opcode::kReadResponseLast));
  EXPECT_TRUE(HasAeth(Opcode::kReadResponseOnly));
  EXPECT_FALSE(HasAeth(Opcode::kReadResponseMiddle));
  EXPECT_TRUE(HasAeth(Opcode::kAcknowledge));
  EXPECT_FALSE(HasAeth(Opcode::kReadRequest));
}

TEST(Wire, SegmentCountAtMtuBoundaries) {
  EXPECT_EQ(SegmentCount(0), 1u);
  EXPECT_EQ(SegmentCount(1), 1u);
  EXPECT_EQ(SegmentCount(kPathMtu), 1u);
  EXPECT_EQ(SegmentCount(kPathMtu + 1), 2u);
  EXPECT_EQ(SegmentCount(3 * kPathMtu), 3u);
  EXPECT_EQ(SegmentCount(3 * kPathMtu + 1), 4u);
}

TEST(Wire, PsnArithmeticWraps) {
  EXPECT_EQ(PsnAdd(0xFFFFFF, 1), 0u);
  EXPECT_EQ(PsnAdd(0xFFFFFE, 3), 1u);
  EXPECT_EQ(PsnDistance(0, 0xFFFFFF), 1);
  EXPECT_EQ(PsnDistance(0xFFFFFF, 0), -1);
  EXPECT_EQ(PsnDistance(5, 5), 0);
  EXPECT_EQ(PsnDistance(100, 50), 50);
  EXPECT_EQ(PsnDistance(50, 100), -50);
}

TEST(Wire, PacketBuildParseReadRequest) {
  Bth bth;
  bth.opcode = Opcode::kReadRequest;
  bth.dest_qp = 7;
  bth.psn = 42;
  Reth reth{0x1000, 0xABCD, 4096};
  net::Packet p = BuildRdmaPacket(1, 2, net::Priority::kRdma, bth, &reth,
                                  nullptr, {});
  EXPECT_TRUE(LooksLikeRdma(p));
  const auto view = ParseRdmaPacket(p);
  EXPECT_EQ(view.bth.opcode, Opcode::kReadRequest);
  EXPECT_EQ(view.bth.dest_qp, 7u);
  EXPECT_EQ(view.bth.psn, 42u);
  ASSERT_TRUE(view.reth.has_value());
  EXPECT_EQ(view.reth->vaddr, 0x1000u);
  EXPECT_EQ(view.reth->dma_length, 4096u);
  EXPECT_FALSE(view.aeth.has_value());
  EXPECT_TRUE(view.payload.empty());
}

TEST(Wire, PacketBuildParseWithPayload) {
  std::vector<std::uint8_t> data(300);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  Bth bth;
  bth.opcode = Opcode::kReadResponseOnly;
  bth.dest_qp = 3;
  bth.psn = 9;
  Aeth aeth{kSyndromeAck, 17};
  net::Packet p =
      BuildRdmaPacket(2, 1, net::Priority::kRdma, bth, nullptr, &aeth, data);
  const auto view = ParseRdmaPacket(p);
  ASSERT_TRUE(view.aeth.has_value());
  EXPECT_EQ(view.aeth->msn, 17u);
  ASSERT_EQ(view.payload.size(), data.size());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), view.payload.begin()));
}

TEST(Wire, PacketSizeAccounting) {
  // Read request: L2L3L4 + BTH + RETH + iCRC, no payload.
  Bth bth;
  bth.opcode = Opcode::kReadRequest;
  Reth reth{0, 0, 100};
  net::Packet p =
      BuildRdmaPacket(1, 2, net::Priority::kRdma, bth, &reth, nullptr, {});
  EXPECT_EQ(p.bytes.size(),
            net::kL2L3L4Bytes + kBthBytes + kRethBytes + kIcrcBytes);
  // ACK: L2L3L4 + BTH + AETH + iCRC.
  Bth ack;
  ack.opcode = Opcode::kAcknowledge;
  Aeth aeth{};
  net::Packet a =
      BuildRdmaPacket(1, 2, net::Priority::kControl, ack, nullptr, &aeth, {});
  EXPECT_EQ(a.bytes.size(),
            net::kL2L3L4Bytes + kBthBytes + kAethBytes + kIcrcBytes);
}

TEST(Wire, NonRocePortIsNotRdma) {
  net::Packet p = net::MakeUdpPacket(1, 2, 64, net::Priority::kBulk, 5001);
  EXPECT_FALSE(LooksLikeRdma(p));
}

TEST(Wire, OpcodeNamesAreStable) {
  EXPECT_STREQ(OpcodeName(Opcode::kReadRequest), "READ_REQUEST");
  EXPECT_STREQ(OpcodeName(Opcode::kWriteMiddle), "WRITE_MIDDLE");
  EXPECT_STREQ(OpcodeName(Opcode::kAcknowledge), "ACKNOWLEDGE");
}

}  // namespace
}  // namespace cowbird::rdma
