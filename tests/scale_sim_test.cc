// The rack-scale fan-in workload (workload/scale_workload.h) and the N-way
// partitioned runs it drives:
//
//   * The 16-node scaling fabric (12 clients + 2 memory servers + spot +
//     switch) split one-domain-per-node is bit-identical — per-client op
//     counts, event totals, virtual time — for 1/2/4/8 workers, on both
//     engines.
//   * Serial vs split agrees within the same-timestamp tie-break tolerance
//     the 2-domain path pins.
//   * Telemetry shards merge N-way into the caller's snapshot.
//   * Chaos runs partitioned per node (SplitScope::kPerNode) uphold every
//     invariant and stay bit-identical across worker counts on both engines.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "chaos/runner.h"
#include "telemetry/hub.h"
#include "workload/scale_workload.h"

namespace cowbird {
namespace {

using workload::Paradigm;
using workload::RunScaleWorkload;
using workload::ScaleWorkloadConfig;
using workload::ScaleWorkloadResult;

ScaleWorkloadConfig Base(Paradigm paradigm) {
  ScaleWorkloadConfig c;  // 12 clients + 2 memory servers: the 16-node rack
  c.paradigm = paradigm;
  c.records = 20'000;
  c.warmup = Micros(100);
  c.measure = Micros(400);
  return c;
}

bool SameOutcome(const ScaleWorkloadResult& a, const ScaleWorkloadResult& b) {
  return a.client_ops == b.client_ops && a.ops == b.ops &&
         a.sim_events == b.sim_events && a.elapsed == b.elapsed;
}

TEST(ScaleSimTest, SixteenNodeSplitBitIdenticalAcrossWorkerCounts) {
  ScaleWorkloadConfig c = Base(Paradigm::kCowbird);
  c.split = true;
  c.split_workers = 1;
  const ScaleWorkloadResult one = RunScaleWorkload(c);
  ASSERT_EQ(one.client_ops.size(), 12u);
  for (std::uint64_t ops : one.client_ops) EXPECT_GT(ops, 0u);
  for (int workers : {2, 4, 8}) {
    c.split_workers = workers;
    const ScaleWorkloadResult many = RunScaleWorkload(c);
    EXPECT_TRUE(SameOutcome(one, many)) << "workers=" << workers;
  }
}

TEST(ScaleSimTest, P4FanInSplitBitIdenticalAcrossWorkerCounts) {
  // Smaller fabric (4 clients + 2 servers = 8 nodes) keeps the P4 variant
  // cheap; the determinism claim is the same.
  ScaleWorkloadConfig c = Base(Paradigm::kCowbirdP4);
  c.clients = 4;
  c.split = true;
  c.split_workers = 1;
  const ScaleWorkloadResult one = RunScaleWorkload(c);
  ASSERT_EQ(one.client_ops.size(), 4u);
  for (std::uint64_t ops : one.client_ops) EXPECT_GT(ops, 0u);
  for (int workers : {2, 8}) {
    c.split_workers = workers;
    const ScaleWorkloadResult many = RunScaleWorkload(c);
    EXPECT_TRUE(SameOutcome(one, many)) << "workers=" << workers;
  }
}

TEST(ScaleSimTest, SplitTracksSerialWithinTieBreakTolerance) {
  const ScaleWorkloadResult serial = RunScaleWorkload(Base(Paradigm::kCowbird));
  ScaleWorkloadConfig c = Base(Paradigm::kCowbird);
  c.split = true;
  c.split_workers = 2;
  const ScaleWorkloadResult split = RunScaleWorkload(c);
  ASSERT_GT(serial.ops, 0u);
  ASSERT_GT(split.ops, 0u);
  // Cross-domain deliveries can flip same-timestamp tie-breaks at the cuts;
  // with 30 directed cuts the effect stays sub-percent in aggregate. Serial
  // byte-identity itself is owned by the golden-pinned tests.
  const double drift = std::abs(static_cast<double>(split.ops) -
                                static_cast<double>(serial.ops)) /
                       static_cast<double>(serial.ops);
  EXPECT_LT(drift, 0.02) << "serial=" << serial.ops << " split=" << split.ops;
}

TEST(ScaleSimTest, DcqcnEnabledButUnmarkedIsByteIdenticalToDefault) {
  // The default fabric never marks (ecn_threshold = 0), so an enabled
  // CongestionManager must not shift a single timestamp: unpaced flows
  // take the identical code path as a congestion-disabled run (the pacing
  // purity contract in rdma/congestion.h). This is what lets DCQCN be
  // switched on fleet-wide without re-baselining the uncontended goldens.
  const ScaleWorkloadResult off = RunScaleWorkload(Base(Paradigm::kCowbird));
  ScaleWorkloadConfig c = Base(Paradigm::kCowbird);
  c.dcqcn.enabled = true;
  const ScaleWorkloadResult on = RunScaleWorkload(c);
  EXPECT_EQ(on.ecn_marked, 0u);
  EXPECT_TRUE(SameOutcome(off, on));
}

TEST(ScaleSimTest, TelemetryShardsMergeNWayIntoCallerSnapshot) {
  Nanos now = 0;
  telemetry::Hub hub([&now] { return now; });
  ScaleWorkloadConfig c = Base(Paradigm::kCowbird);
  c.clients = 4;
  c.split = true;
  c.split_workers = 2;
  c.telemetry = &hub;
  const ScaleWorkloadResult result = RunScaleWorkload(c);
  EXPECT_GT(result.ops, 0u);
  // The merged snapshot must carry metrics from engine-side domains (bound
  // to private shards during the run), not just the root's. Client uplinks
  // bind their gauges to the switch domain's shard.
  bool saw_uplink = false;
  bool saw_epochs = false;
  bool saw_barrier_wall = false;
  for (const auto& gauge : result.telemetry.gauges) {
    if (gauge.key.find("uplink[") != std::string::npos) saw_uplink = true;
    if (gauge.key.find("sim_epochs_total{") != std::string::npos) {
      saw_epochs = true;
      EXPECT_GT(gauge.value, 0) << gauge.key;
    }
    if (gauge.key.find("sim_barrier_wait_ns_wall{") != std::string::npos) {
      saw_barrier_wall = true;
    }
  }
  EXPECT_TRUE(saw_uplink);
  // The per-domain epoch gauges ride the shards: deterministic epoch counts
  // plus the wall-clock barrier gauge (suffix _wall marks it as exempt from
  // any cross-run snapshot comparison).
  EXPECT_TRUE(saw_epochs);
  EXPECT_TRUE(saw_barrier_wall);
}

// ------------------------------------------- two-tier fabric and packed split

// The hundreds-of-clients acceptance fabric: 128 clients in 8 groups of 16
// behind per-group ToRs, trunked into the core with 4 memory servers and the
// spot host. Both split scopes — one domain per node (142 domains) and the
// packed budget-8 partition — are bit-identical for any worker count.
TEST(ScaleSimTest, TwoTier128ClientFabricBitIdenticalAcrossWorkersAndScopes) {
  ScaleWorkloadConfig c = Base(Paradigm::kCowbird);
  c.clients = 128;
  c.memory_servers = 4;
  c.client_groups = 8;
  c.threads_per_client = 1;
  c.records = 20'000;
  c.warmup = Micros(50);
  c.measure = Micros(150);
  c.split = true;
  for (const bool packed : {false, true}) {
    c.packed = packed;
    c.split_workers = 1;
    const ScaleWorkloadResult one = RunScaleWorkload(c);
    ASSERT_EQ(one.client_ops.size(), 128u);
    EXPECT_GT(one.ops, 0u);
    // 128 clients + core + 4 memories + spot + 8 group ToRs = 142 nodes.
    EXPECT_EQ(one.domains, packed ? 8 : 142);
    EXPECT_GT(one.epochs, 0u);
    for (int workers : {2, 4, 8}) {
      c.split_workers = workers;
      const ScaleWorkloadResult many = RunScaleWorkload(c);
      EXPECT_TRUE(SameOutcome(one, many))
          << "packed=" << packed << " workers=" << workers;
      // Epoch counts are part of the deterministic contract too: the packed
      // profiling pre-run and the horizon schedule are worker-independent.
      EXPECT_EQ(one.epochs, many.epochs)
          << "packed=" << packed << " workers=" << workers;
      EXPECT_EQ(one.epochs_skipped, many.epochs_skipped)
          << "packed=" << packed << " workers=" << workers;
    }
  }
}

// ----------------------------------------------------- horizon-policy property

// Per-edge horizons and the historical global-min horizon must produce the
// same simulation, bit for bit — the banded cross-event keys make delivery
// order a pure function of published epoch state, so the horizon schedule
// can only change how often domains wake, never what they compute. Pinned
// on the 16-node fabric and the two-tier fabric, across worker counts.
TEST(ScaleSimTest, HorizonPolicyInvariantOutcomesOn16NodeAndTwoTier) {
  for (const int client_groups : {1, 4}) {
    ScaleWorkloadConfig c = Base(Paradigm::kCowbird);
    c.client_groups = client_groups;
    if (client_groups > 1) {
      c.clients = 32;
      c.threads_per_client = 1;
      c.measure = Micros(200);
    }
    c.split = true;
    ScaleWorkloadResult per_edge;
    ScaleWorkloadResult global_min;
    for (int workers : {1, 4}) {
      c.split_workers = workers;
      c.horizon_policy = sim::HorizonPolicy::kPerEdge;
      const ScaleWorkloadResult pe = RunScaleWorkload(c);
      c.horizon_policy = sim::HorizonPolicy::kGlobalMin;
      const ScaleWorkloadResult gm = RunScaleWorkload(c);
      EXPECT_TRUE(SameOutcome(pe, gm))
          << "groups=" << client_groups << " workers=" << workers;
      if (workers == 1) {
        per_edge = pe;
        global_min = gm;
      } else {
        // Policies are individually bit-identical across worker counts.
        EXPECT_TRUE(SameOutcome(per_edge, pe));
        EXPECT_TRUE(SameOutcome(global_min, gm));
        EXPECT_EQ(per_edge.epochs, pe.epochs);
        EXPECT_EQ(global_min.epochs, gm.epochs);
      }
    }
    // The point of per-edge horizons: strictly fewer barrier rounds for the
    // same simulated time (the ≥3x ratio itself is gated in the
    // sim_throughput bench, where the fabric is big enough to matter).
    EXPECT_GT(global_min.epochs, 0u);
    EXPECT_LT(per_edge.epochs, global_min.epochs)
        << "groups=" << client_groups;
  }
}

TEST(ScaleSimTest, HorizonPolicyInvariantUnderLiveMigration) {
  ScaleWorkloadConfig c = Base(Paradigm::kCowbird);
  c.records = 16'384;
  c.measure = Millis(1);
  c.migrate = true;
  c.migrate_start = Micros(300);
  c.split = true;
  c.split_workers = 2;
  c.horizon_policy = sim::HorizonPolicy::kPerEdge;
  const ScaleWorkloadResult pe = RunScaleWorkload(c);
  c.horizon_policy = sim::HorizonPolicy::kGlobalMin;
  const ScaleWorkloadResult gm = RunScaleWorkload(c);
  EXPECT_EQ(pe.migrations, 1u);
  EXPECT_TRUE(SameOutcome(pe, gm));
  EXPECT_EQ(pe.migrations, gm.migrations);
  EXPECT_EQ(pe.migrate_bytes_copied, gm.migrate_bytes_copied);
  EXPECT_EQ(pe.migrate_cutover_at, gm.migrate_cutover_at);
}

// ----------------------------------------------------- chaos, per-node scope

TEST(ChaosPerNodeSplitTest, BitIdenticalAcrossWorkerCountsOnBothEngines) {
  for (chaos::EngineKind engine :
       {chaos::EngineKind::kSpot, chaos::EngineKind::kP4}) {
    // Seed 3 schedules engine crashes (odd seeds do); seed 4 is crash-free.
    for (std::uint64_t seed : {std::uint64_t{3}, std::uint64_t{4}}) {
      chaos::ChaosOptions opt = chaos::SweepOptions(engine, seed);
      opt.mode = chaos::ExecutionMode::kSplit;
      opt.split_scope = chaos::SplitScope::kPerNode;
      opt.split_workers = 1;
      const chaos::ChaosResult one = chaos::RunChaos(opt);
      EXPECT_TRUE(one.Passed())
          << chaos::EngineKindName(engine) << " seed " << seed;
      if (seed % 2 == 1) {
        EXPECT_GT(one.crashes_executed, 0u);
      }
      for (int workers : {2, 4}) {
        opt.split_workers = workers;
        const chaos::ChaosResult many = chaos::RunChaos(opt);
        EXPECT_TRUE(many.Passed())
            << chaos::EngineKindName(engine) << " seed " << seed
            << " workers " << workers;
        EXPECT_EQ(one.history.size(), many.history.size());
        EXPECT_EQ(one.reads_checked, many.reads_checked);
        EXPECT_EQ(one.writes_completed, many.writes_completed);
        EXPECT_EQ(one.faults_injected, many.faults_injected);
        EXPECT_EQ(one.decided_dropped, many.decided_dropped);
        EXPECT_EQ(one.decided_duplicated, many.decided_duplicated);
        EXPECT_EQ(one.decided_reordered, many.decided_reordered);
        EXPECT_EQ(one.decided_delayed, many.decided_delayed);
        EXPECT_EQ(one.crashes_executed, many.crashes_executed);
      }
    }
  }
}

// The policy-invariance property on full chaos runs: crash seeds (3) and
// live-migration plans replay identically under either horizon policy.
TEST(ChaosPerNodeSplitTest, HorizonPolicyInvariantIncludingCrashAndMigration) {
  for (const bool migrate : {false, true}) {
    for (std::uint64_t seed : {std::uint64_t{3}, std::uint64_t{4}}) {
      chaos::ChaosOptions opt =
          chaos::SweepOptions(chaos::EngineKind::kSpot, seed);
      opt.plan.migrate = migrate;
      opt.mode = chaos::ExecutionMode::kSplit;
      opt.split_scope = chaos::SplitScope::kPerNode;
      opt.split_workers = 2;
      opt.horizon_policy = sim::HorizonPolicy::kPerEdge;
      const chaos::ChaosResult pe = chaos::RunChaos(opt);
      opt.horizon_policy = sim::HorizonPolicy::kGlobalMin;
      const chaos::ChaosResult gm = chaos::RunChaos(opt);
      EXPECT_TRUE(pe.Passed()) << "seed " << seed;
      EXPECT_TRUE(gm.Passed()) << "seed " << seed;
      EXPECT_EQ(pe.history.size(), gm.history.size()) << "seed " << seed;
      EXPECT_EQ(pe.reads_checked, gm.reads_checked) << "seed " << seed;
      EXPECT_EQ(pe.writes_completed, gm.writes_completed) << "seed " << seed;
      EXPECT_EQ(pe.faults_injected, gm.faults_injected) << "seed " << seed;
      EXPECT_EQ(pe.crashes_executed, gm.crashes_executed) << "seed " << seed;
      EXPECT_EQ(pe.migrations_executed, gm.migrations_executed)
          << "seed " << seed;
      if (seed % 2 == 1) {
        EXPECT_GT(pe.crashes_executed, 0u);
      }
      if (migrate) {
        EXPECT_EQ(pe.migrations_executed, 1u);
      }
    }
  }
}

TEST(ChaosPerNodeSplitTest, PerNodeUpholdsInvariantsAgainstSerial) {
  for (chaos::EngineKind engine :
       {chaos::EngineKind::kSpot, chaos::EngineKind::kP4}) {
    chaos::ChaosOptions opt = chaos::SweepOptions(engine, /*seed=*/5);
    const chaos::ChaosResult serial = chaos::RunChaos(opt);
    opt.mode = chaos::ExecutionMode::kSplit;
    opt.split_scope = chaos::SplitScope::kPerNode;
    opt.split_workers = 2;
    const chaos::ChaosResult split = chaos::RunChaos(opt);
    EXPECT_TRUE(serial.Passed()) << chaos::EngineKindName(engine);
    EXPECT_TRUE(split.Passed()) << chaos::EngineKindName(engine);
    EXPECT_EQ(serial.history.size(), split.history.size());
    EXPECT_EQ(serial.crashes_executed, split.crashes_executed);
  }
}

}  // namespace
}  // namespace cowbird
