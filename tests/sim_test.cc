#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/thread.h"

namespace cowbird::sim {
namespace {

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(Simulation, EqualTimesFireInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(100, [&] { ++fired; });
  sim.ScheduleAt(200, [&] { ++fired; });
  sim.RunUntil(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 150);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, CancelableTimerDoesNotFire) {
  Simulation sim;
  int fired = 0;
  auto handle = sim.ScheduleCancelableAfter(50, [&] { ++fired; });
  EXPECT_TRUE(handle.Pending());
  handle.Cancel();
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulation, NestedScheduling) {
  Simulation sim;
  int value = 0;
  sim.ScheduleAt(1, [&] {
    sim.ScheduleAfter(5, [&] { value = sim.Now() == 6 ? 42 : -1; });
  });
  sim.Run();
  EXPECT_EQ(value, 42);
}

TEST(Coroutine, DelayAdvancesClock) {
  Simulation sim;
  Nanos woke_at = -1;
  sim.Spawn([](Simulation& s, Nanos& out) -> Task<void> {
    co_await s.Delay(123);
    out = s.Now();
  }(sim, woke_at));
  sim.Run();
  EXPECT_EQ(woke_at, 123);
}

TEST(Coroutine, SubtaskReturnsValue) {
  Simulation sim;
  int result = 0;

  struct Helpers {
    static Task<int> Inner(Simulation& s) {
      co_await s.Delay(10);
      co_return 7;
    }
    static Task<void> Outer(Simulation& s, int& out) {
      const int a = co_await Inner(s);
      const int b = co_await Inner(s);
      out = a + b;
    }
  };
  sim.Spawn(Helpers::Outer(sim, result));
  sim.Run();
  EXPECT_EQ(result, 14);
  EXPECT_EQ(sim.Now(), 20);
}

TEST(Coroutine, ExceptionPropagatesToAwaiter) {
  Simulation sim;
  bool caught = false;

  struct Helpers {
    static Task<int> Thrower(Simulation& s) {
      co_await s.Delay(1);
      throw std::runtime_error("boom");
    }
    static Task<void> Catcher(Simulation& s, bool& out) {
      try {
        (void)co_await Thrower(s);
      } catch (const std::runtime_error&) {
        out = true;
      }
    }
  };
  sim.Spawn(Helpers::Catcher(sim, caught));
  sim.Run();
  EXPECT_TRUE(caught);
}

TEST(Coroutine, SuspendedRootIsDestroyedAtTeardown) {
  // A process suspended forever (waiting on a channel that never delivers)
  // must not leak or crash at simulation destruction.
  auto sim = std::make_unique<Simulation>();
  auto channel = std::make_unique<Channel<int>>(*sim);
  sim->Spawn([](Channel<int>& ch) -> Task<void> {
    (void)co_await ch.Receive();
  }(*channel));
  sim->Run();
  sim.reset();  // destroys the suspended frame; channel outlives it
}

TEST(Sync, OneShotEventReleasesAllWaiters) {
  Simulation sim;
  OneShotEvent event(sim);
  int released = 0;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn([](OneShotEvent& e, int& out) -> Task<void> {
      co_await e.Wait();
      ++out;
    }(event, released));
  }
  sim.ScheduleAt(100, [&] { event.Set(); });
  sim.Run();
  EXPECT_EQ(released, 3);
}

TEST(Sync, EventAlreadySetDoesNotBlock) {
  Simulation sim;
  OneShotEvent event(sim);
  event.Set();
  bool done = false;
  sim.Spawn([](OneShotEvent& e, bool& out) -> Task<void> {
    co_await e.Wait();
    out = true;
  }(event, done));
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(Sync, ChannelDeliversInFifoOrder) {
  Simulation sim;
  Channel<int> channel(sim);
  std::vector<int> received;
  sim.Spawn([](Channel<int>& ch, std::vector<int>& out) -> Task<void> {
    for (int i = 0; i < 5; ++i) out.push_back(co_await ch.Receive());
  }(channel, received));
  sim.ScheduleAt(10, [&] {
    for (int i = 0; i < 5; ++i) channel.Send(i);
  });
  sim.Run();
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Sync, ChannelHandoffToEarlierWaiter) {
  Simulation sim;
  Channel<int> channel(sim);
  std::vector<std::pair<int, int>> got;  // (waiter, value)
  for (int w = 0; w < 2; ++w) {
    sim.Spawn([](Channel<int>& ch, std::vector<std::pair<int, int>>& out,
                 int id) -> Task<void> {
      const int v = co_await ch.Receive();
      out.emplace_back(id, v);
    }(channel, got, w));
  }
  sim.ScheduleAt(5, [&] {
    channel.Send(100);
    channel.Send(200);
  });
  sim.Run();
  ASSERT_EQ(got.size(), 2u);
  // First registered waiter gets first value.
  EXPECT_EQ(got[0], (std::pair<int, int>{0, 100}));
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 200}));
}

TEST(Sync, ChannelTryReceive) {
  Simulation sim;
  Channel<int> channel(sim);
  EXPECT_FALSE(channel.TryReceive().has_value());
  channel.Send(9);
  auto v = channel.TryReceive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
}

TEST(Sync, SemaphoreLimitsConcurrency) {
  Simulation sim;
  Semaphore sem(sim, 2);
  int concurrent = 0;
  int peak = 0;
  for (int i = 0; i < 6; ++i) {
    sim.Spawn([](Simulation& s, Semaphore& sm, int& cur,
                 int& pk) -> Task<void> {
      co_await sm.Acquire();
      ++cur;
      pk = std::max(pk, cur);
      co_await s.Delay(10);
      --cur;
      sm.Release();
    }(sim, sem, concurrent, peak));
  }
  sim.Run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(sim.Now(), 30);  // 6 jobs, 2 at a time, 10 ns each
}

TEST(Sync, CountdownLatch) {
  Simulation sim;
  CountdownLatch latch(sim, 3);
  bool released = false;
  sim.Spawn([](CountdownLatch& l, bool& out) -> Task<void> {
    co_await l.Wait();
    out = true;
  }(latch, released));
  sim.ScheduleAt(1, [&] { latch.CountDown(); });
  sim.ScheduleAt(2, [&] { latch.CountDown(); });
  sim.RunUntil(5);
  EXPECT_FALSE(released);
  latch.CountDown();
  sim.Run();
  EXPECT_TRUE(released);
}

TEST(Thread, WorkChargesCategory) {
  Simulation sim;
  Machine machine(sim, 4);
  SimThread thread(machine, "t0");
  sim.Spawn([](SimThread& t) -> Task<void> {
    co_await t.Work(100, CpuCategory::kCompute);
    co_await t.Work(50, CpuCategory::kCommunication);
    co_await t.Idle(1000);
    co_await t.Work(50, CpuCategory::kCommunication);
  }(thread));
  sim.Run();
  EXPECT_EQ(thread.TimeIn(CpuCategory::kCompute), 100);
  EXPECT_EQ(thread.TimeIn(CpuCategory::kCommunication), 100);
  EXPECT_EQ(thread.TotalBusy(), 200);
  EXPECT_DOUBLE_EQ(thread.CommunicationRatio(), 0.5);
  EXPECT_EQ(sim.Now(), 1200);
}

TEST(Thread, OversubscriptionStretchesWork) {
  Simulation sim;
  Machine machine(sim, 2);
  std::vector<std::unique_ptr<SimThread>> threads;
  for (int i = 0; i < 4; ++i) {
    threads.push_back(std::make_unique<SimThread>(machine, "t"));
  }
  // 4 threads on 2 cores all start 100 ns of work at t=0. The first two see
  // load ≤ cores (factor 1 for #1, 1 for #2); the 3rd and 4th see factors
  // 1.5 and 2.
  for (auto& t : threads) {
    sim.Spawn([](SimThread& thr) -> Task<void> {
      co_await thr.Work(100, CpuCategory::kCompute);
    }(*t));
  }
  sim.Run();
  EXPECT_EQ(threads[0]->TotalBusy(), 100);
  EXPECT_EQ(threads[1]->TotalBusy(), 100);
  EXPECT_EQ(threads[2]->TotalBusy(), 150);
  EXPECT_EQ(threads[3]->TotalBusy(), 200);
  EXPECT_EQ(sim.Now(), 200);
}

TEST(Thread, ZeroWorkIsFree) {
  Simulation sim;
  Machine machine(sim, 1);
  SimThread thread(machine, "t");
  sim.Spawn([](SimThread& t) -> Task<void> {
    co_await t.Work(0, CpuCategory::kCompute);
  }(thread));
  sim.Run();
  EXPECT_EQ(thread.TotalBusy(), 0);
  EXPECT_EQ(sim.Now(), 0);
}

}  // namespace
}  // namespace cowbird::sim
