// End-to-end integration: Cowbird client library + Cowbird-Spot offload
// engine over the simulated RoCE fabric. The compute node issues requests
// with local-memory writes only; the spot agent moves all data.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "core/client.h"
#include "fabric_fixture.h"
#include "spot/agent.h"
#include "spot/setup.h"

namespace cowbird::spot {
namespace {

using cowbird::testing::TestFabric;
using core::CowbirdClient;
using core::RegionInfo;
using core::ReqId;
using core::RwType;

constexpr std::uint64_t kPoolBase = 0x100000;
constexpr std::uint64_t kHeap = 0x4000000;
constexpr std::uint16_t kRegion = 1;

std::vector<std::uint8_t> Pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
  return data;
}

class SpotEngineTest : public ::testing::Test {
 public:
  explicit SpotEngineTest(SpotAgent::Config agent_config = {},
                          int client_threads = 2)
      : spot_machine_(f_.sim, 1) {
    pool_mr_ = f_.memory_dev.RegisterMemory(kPoolBase, MiB(64));

    CowbirdClient::Config client_config;
    client_config.layout.base = 0x10000;
    client_config.layout.threads = client_threads;
    client_config.layout.meta_slots = 64;
    client_config.layout.data_capacity = KiB(64);
    client_config.layout.resp_capacity = KiB(64);
    client_ = std::make_unique<CowbirdClient>(f_.compute_dev, client_config);
    client_->RegisterRegion(RegionInfo{kRegion, TestFabric::kMemoryId,
                                       kPoolBase, pool_mr_->rkey, MiB(64)});

    agent_ = std::make_unique<SpotAgent>(f_.spot_dev, spot_machine_,
                                         agent_config);
    rdma::Device* memories[] = {&f_.memory_dev};
    auto conn = ConnectSpotEngine(f_.spot_dev, f_.compute_dev, memories);
    agent_->AddInstance(client_->descriptor(), conn.to_compute,
                        conn.compute_cq, conn.to_memory, conn.memory_cqs);
    agent_->Start();
    app_thread_ = std::make_unique<sim::SimThread>(f_.compute_machine, "app");
  }

  // Issues an async read and waits for its completion; returns the bytes.
  sim::Task<std::vector<std::uint8_t>> ReadAndWait(int t,
                                                   std::uint64_t offset,
                                                   std::uint32_t len,
                                                   std::uint64_t dest) {
    auto& ctx = client_->thread(t);
    std::optional<ReqId> id;
    while (!(id = co_await ctx.AsyncRead(*app_thread_, kRegion, offset, dest,
                                         len))) {
      co_await app_thread_->Idle(Micros(5));
    }
    const core::PollId poll = ctx.PollCreate();
    ctx.PollAdd(poll, *id);
    for (;;) {
      auto done = co_await ctx.PollWait(*app_thread_, poll, 1, Millis(5));
      if (!done.empty()) break;
    }
    std::vector<std::uint8_t> out(len);
    f_.compute_mem.Read(dest, out);
    co_return out;
  }

  sim::Task<ReqId> WriteAndWait(int t, std::uint64_t src, std::uint64_t off,
                                std::uint32_t len) {
    auto& ctx = client_->thread(t);
    std::optional<ReqId> id;
    while (!(id = co_await ctx.AsyncWrite(*app_thread_, kRegion, src, off,
                                          len))) {
      co_await app_thread_->Idle(Micros(5));
    }
    const core::PollId poll = ctx.PollCreate();
    ctx.PollAdd(poll, *id);
    for (;;) {
      auto done = co_await ctx.PollWait(*app_thread_, poll, 1, Millis(5));
      if (!done.empty()) break;
    }
    co_return *id;
  }

  TestFabric f_;
  sim::Machine spot_machine_;
  const rdma::MemoryRegion* pool_mr_;
  std::unique_ptr<CowbirdClient> client_;
  std::unique_ptr<SpotAgent> agent_;
  std::unique_ptr<sim::SimThread> app_thread_;
};

TEST_F(SpotEngineTest, ReadFetchesPoolData) {
  const auto data = Pattern(256, 1);
  f_.memory_mem.Write(kPoolBase + 0x2000, data);
  std::vector<std::uint8_t> got;
  f_.sim.Spawn([](SpotEngineTest& t, std::vector<std::uint8_t>& out)
                   -> sim::Task<void> {
    out = co_await t.ReadAndWait(0, 0x2000, 256, kHeap);
    t.f_.sim.Halt();
  }(*this, got));
  f_.sim.Run();
  EXPECT_EQ(got, data);
  EXPECT_GT(agent_->probes_sent(), 0u);
  EXPECT_EQ(agent_->ops_completed(), 1u);
}

TEST_F(SpotEngineTest, WriteLandsInPool) {
  const auto data = Pattern(512, 2);
  f_.compute_mem.Write(kHeap, data);
  f_.sim.Spawn([](SpotEngineTest& t) -> sim::Task<void> {
    co_await t.WriteAndWait(0, kHeap, 0x8000, 512);
    t.f_.sim.Halt();
  }(*this));
  f_.sim.Run();
  std::vector<std::uint8_t> out(512);
  f_.memory_mem.Read(kPoolBase + 0x8000, out);
  EXPECT_EQ(out, data);
}

TEST_F(SpotEngineTest, ReadAfterWriteSeesNewData) {
  // Linearizability across types: a read issued after a write to an
  // overlapping range must return the written data.
  const auto old_data = Pattern(128, 3);
  const auto new_data = Pattern(128, 4);
  f_.memory_mem.Write(kPoolBase + 0x9000, old_data);
  f_.compute_mem.Write(kHeap, new_data);
  std::vector<std::uint8_t> got;
  f_.sim.Spawn([](SpotEngineTest& t, const std::vector<std::uint8_t>& nd,
                  std::vector<std::uint8_t>& out) -> sim::Task<void> {
    auto& ctx = t.client_->thread(0);
    // Issue write then read back-to-back WITHOUT waiting in between.
    auto w = co_await ctx.AsyncWrite(*t.app_thread_, kRegion, kHeap, 0x9000,
                                     128);
    EXPECT_TRUE(w.has_value());
    auto r = co_await ctx.AsyncRead(*t.app_thread_, kRegion, 0x9000,
                                    kHeap + 4096, 128);
    EXPECT_TRUE(r.has_value());
    const core::PollId poll = ctx.PollCreate();
    ctx.PollAdd(poll, *w);
    ctx.PollAdd(poll, *r);
    int done = 0;
    while (done < 2) {
      auto completed =
          co_await ctx.PollWait(*t.app_thread_, poll, 2, Millis(5));
      done += static_cast<int>(completed.size());
    }
    out.resize(128);
    t.f_.compute_mem.Read(kHeap + 4096, out);
    (void)nd;
    t.f_.sim.Halt();
  }(*this, new_data, got));
  f_.sim.Run();
  EXPECT_EQ(got, new_data);
  EXPECT_GT(agent_->reads_stalled_by_writes(), 0u);
}

TEST_F(SpotEngineTest, NonOverlappingReadIsNotStalledByWrite) {
  const auto a = Pattern(128, 5);
  const auto b = Pattern(128, 6);
  f_.memory_mem.Write(kPoolBase + 0x20000, b);
  f_.compute_mem.Write(kHeap, a);
  f_.sim.Spawn([](SpotEngineTest& t) -> sim::Task<void> {
    auto& ctx = t.client_->thread(0);
    auto w = co_await ctx.AsyncWrite(*t.app_thread_, kRegion, kHeap, 0x9000,
                                     128);
    auto r = co_await ctx.AsyncRead(*t.app_thread_, kRegion, 0x20000,
                                    kHeap + 4096, 128);
    EXPECT_TRUE(w && r);
    const core::PollId poll = ctx.PollCreate();
    ctx.PollAdd(poll, *w);
    ctx.PollAdd(poll, *r);
    int done = 0;
    while (done < 2) {
      auto completed =
          co_await ctx.PollWait(*t.app_thread_, poll, 2, Millis(5));
      done += static_cast<int>(completed.size());
    }
    t.f_.sim.Halt();
  }(*this));
  f_.sim.Run();
  EXPECT_EQ(agent_->reads_stalled_by_writes(), 0u);
  std::vector<std::uint8_t> out(128);
  f_.compute_mem.Read(kHeap + 4096, out);
  EXPECT_EQ(out, b);
}

TEST_F(SpotEngineTest, ManyReadsAreBatched) {
  // 64 consecutive 64-byte reads from one thread: with batch_size 16 the
  // agent should deliver them in far fewer than 64 RDMA writes.
  for (int i = 0; i < 64; ++i) {
    f_.memory_mem.Write(kPoolBase + 0x40000 + i * 64, Pattern(64, 100 + i));
  }
  f_.sim.Spawn([](SpotEngineTest& t) -> sim::Task<void> {
    auto& ctx = t.client_->thread(0);
    const core::PollId poll = ctx.PollCreate();
    std::vector<ReqId> ids;
    for (int i = 0; i < 64; ++i) {
      std::optional<ReqId> id;
      while (!(id = co_await ctx.AsyncRead(*t.app_thread_, kRegion,
                                           0x40000 + i * 64,
                                           kHeap + i * 64, 64))) {
        co_await t.app_thread_->Idle(Micros(5));
      }
      ctx.PollAdd(poll, *id);
    }
    int done = 0;
    while (done < 64) {
      auto completed =
          co_await ctx.PollWait(*t.app_thread_, poll, 64, Millis(5));
      done += static_cast<int>(completed.size());
    }
    t.f_.sim.Halt();
  }(*this));
  f_.sim.Run();
  for (int i = 0; i < 64; ++i) {
    std::vector<std::uint8_t> out(64);
    f_.compute_mem.Read(kHeap + i * 64, out);
    EXPECT_EQ(out, Pattern(64, 100 + i)) << "read " << i;
  }
  EXPECT_LT(agent_->batches_flushed(), 24u);
  EXPECT_GE(agent_->batches_flushed(), 4u);
}

TEST_F(SpotEngineTest, TwoThreadsProgressIndependently) {
  const auto d0 = Pattern(256, 7);
  const auto d1 = Pattern(256, 8);
  f_.memory_mem.Write(kPoolBase + 0x50000, d0);
  f_.memory_mem.Write(kPoolBase + 0x60000, d1);
  int finished = 0;
  for (int t = 0; t < 2; ++t) {
    f_.sim.Spawn([](SpotEngineTest& test, int tid, int& count)
                     -> sim::Task<void> {
      auto out = co_await test.ReadAndWait(
          tid, tid == 0 ? 0x50000 : 0x60000, 256, kHeap + tid * 4096);
      (void)out;
      if (++count == 2) test.f_.sim.Halt();
    }(*this, t, finished));
  }
  f_.sim.Run();
  std::vector<std::uint8_t> out0(256), out1(256);
  f_.compute_mem.Read(kHeap, out0);
  f_.compute_mem.Read(kHeap + 4096, out1);
  EXPECT_EQ(out0, d0);
  EXPECT_EQ(out1, d1);
}

TEST_F(SpotEngineTest, LargeTransfersSpanningMtu) {
  const auto data = Pattern(5 * 1024, 9);
  f_.compute_mem.Write(kHeap, data);
  std::vector<std::uint8_t> got;
  f_.sim.Spawn([](SpotEngineTest& t, std::vector<std::uint8_t>& out)
                   -> sim::Task<void> {
    co_await t.WriteAndWait(0, kHeap, 0x70000, 5 * 1024);
    out = co_await t.ReadAndWait(0, 0x70000, 5 * 1024, kHeap + 0x10000);
    t.f_.sim.Halt();
  }(*this, got));
  f_.sim.Run();
  EXPECT_EQ(got, data);
}

TEST_F(SpotEngineTest, SustainedMixedWorkloadWithRingWraps) {
  // Enough operations to wrap the 64-slot metadata ring and both data rings
  // several times, interleaving reads and writes.
  f_.sim.Spawn([](SpotEngineTest& t) -> sim::Task<void> {
    Rng rng(77);
    for (int i = 0; i < 300; ++i) {
      const std::uint32_t len =
          static_cast<std::uint32_t>(rng.Between(8, 2048));
      const std::uint64_t off = rng.Below(1024) * 2048;
      if (rng.Bernoulli(0.5)) {
        const auto data = Pattern(len, 5000 + i);
        t.f_.compute_mem.Write(kHeap, data);
        co_await t.WriteAndWait(0, kHeap, off, len);
        auto got = co_await t.ReadAndWait(0, off, len, kHeap + 0x100000);
        EXPECT_EQ(got, data) << "iteration " << i;
      } else {
        auto got = co_await t.ReadAndWait(0, off, len, kHeap + 0x100000);
        std::vector<std::uint8_t> expect(len);
        t.f_.memory_mem.Read(kPoolBase + off, expect);
        EXPECT_EQ(got, expect) << "iteration " << i;
      }
    }
    t.f_.sim.Halt();
  }(*this));
  f_.sim.Run();
}

// Packet loss between switch and both hosts: Cowbird recovers via the
// underlying Go-Back-N (Section 5.3 fault tolerance).
TEST_F(SpotEngineTest, SurvivesPacketLoss) {
  auto rng = std::make_shared<Rng>(99);
  auto loss = [rng](const net::Packet& p) {
    return rdma::LooksLikeRdma(p) && rng->Bernoulli(0.02);
  };
  f_.sw.EgressLink(f_.memory_nic.switch_port()).set_drop_filter(loss);
  f_.sw.EgressLink(f_.compute_nic.switch_port()).set_drop_filter(loss);
  f_.sw.EgressLink(f_.spot_nic.switch_port()).set_drop_filter(loss);

  f_.sim.Spawn([](SpotEngineTest& t) -> sim::Task<void> {
    for (int i = 0; i < 50; ++i) {
      const auto data = Pattern(300, 9000 + i);
      t.f_.compute_mem.Write(kHeap, data);
      co_await t.WriteAndWait(0, kHeap, i * 512, 300);
      auto got = co_await t.ReadAndWait(0, i * 512, 300, kHeap + 0x100000);
      EXPECT_EQ(got, data) << "iteration " << i;
    }
    t.f_.sim.Halt();
  }(*this));
  f_.sim.Run();
}

class SpotEngineNoBatchTest : public SpotEngineTest {
 public:
  SpotEngineNoBatchTest()
      : SpotEngineTest(
            [] {
              SpotAgent::Config c;
              c.batch_size = 1;  // batching disabled
              return c;
            }(),
            1) {}
};

TEST_F(SpotEngineNoBatchTest, EveryReadFlushedIndividually) {
  for (int i = 0; i < 16; ++i) {
    f_.memory_mem.Write(kPoolBase + 0x40000 + i * 64, Pattern(64, 200 + i));
  }
  f_.sim.Spawn([](SpotEngineTest& t) -> sim::Task<void> {
    auto& ctx = t.client_->thread(0);
    const core::PollId poll = ctx.PollCreate();
    for (int i = 0; i < 16; ++i) {
      auto id = co_await ctx.AsyncRead(*t.app_thread_, kRegion,
                                       0x40000 + i * 64, kHeap + i * 64, 64);
      EXPECT_TRUE(id.has_value());
      ctx.PollAdd(poll, *id);
    }
    int done = 0;
    while (done < 16) {
      auto completed =
          co_await ctx.PollWait(*t.app_thread_, poll, 16, Millis(5));
      done += static_cast<int>(completed.size());
    }
    t.f_.sim.Halt();
  }(*this));
  f_.sim.Run();
  EXPECT_EQ(agent_->batches_flushed(), 16u);
  for (int i = 0; i < 16; ++i) {
    std::vector<std::uint8_t> out(64);
    f_.compute_mem.Read(kHeap + i * 64, out);
    EXPECT_EQ(out, Pattern(64, 200 + i));
  }
}

}  // namespace
}  // namespace cowbird::spot
