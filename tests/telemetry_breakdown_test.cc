// Per-stage latency accounting: in a loss-free run, the telemetry op
// breakdown must tile the client-observed latency of every operation
// exactly — issue..retired equals the sum of the four recorded segments,
// and equals the wall (virtual) time between AsyncRead/AsyncWrite entry
// and PollWait success. Checked against both engines.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/client.h"
#include "fabric_fixture.h"
#include "p4/engine.h"
#include "spot/agent.h"
#include "spot/setup.h"
#include "telemetry/hub.h"

namespace cowbird::telemetry {
namespace {

using cowbird::testing::TestFabric;
using core::CowbirdClient;
using core::RegionInfo;
using core::ReqId;

constexpr std::uint64_t kPoolBase = 0x100000;
constexpr std::uint64_t kHeap = 0x4000000;
constexpr std::uint16_t kRegion = 1;
constexpr net::NodeId kSwitchId = 100;

std::vector<std::uint8_t> Pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
  return data;
}

// Issue timestamp and observed completion timestamp of one op.
struct OpTiming {
  std::optional<ReqId> id;
  Nanos issued = 0;
  Nanos completed = 0;
};

// Base harness: testbed + instrumented client; engine added by subclasses.
class BreakdownTestBase : public ::testing::Test {
 public:
  BreakdownTestBase() : hub_([this] { return f_.sim.Now(); }) {
    pool_mr_ = f_.memory_dev.RegisterMemory(kPoolBase, MiB(64));

    CowbirdClient::Config cc;
    cc.layout.base = 0x10000;
    cc.layout.threads = 1;
    cc.layout.meta_slots = 64;
    cc.layout.data_capacity = KiB(64);
    cc.layout.resp_capacity = KiB(64);
    cc.telemetry = &hub_;
    client_ = std::make_unique<CowbirdClient>(f_.compute_dev, cc);
    client_->RegisterRegion(RegionInfo{kRegion, TestFabric::kMemoryId,
                                       kPoolBase, pool_mr_->rkey, MiB(64)});
    app_thread_ = std::make_unique<sim::SimThread>(f_.compute_machine, "app");
  }

  // One op at a time: issue, poll to completion, record both endpoints.
  sim::Task<void> RunOp(bool is_write, std::uint64_t offset,
                        std::uint32_t len, OpTiming& out) {
    auto& ctx = client_->thread(0);
    out.issued = f_.sim.Now();  // AsyncRead/Write stamp kIssue at entry
    if (is_write) {
      out.id = co_await ctx.AsyncWrite(*app_thread_, kRegion, kHeap, offset,
                                       len);
    } else {
      out.id = co_await ctx.AsyncRead(*app_thread_, kRegion, offset, kHeap,
                                      len);
    }
    EXPECT_TRUE(out.id.has_value());  // rings are empty: first try succeeds
    if (!out.id.has_value()) co_return;
    const core::PollId poll = ctx.PollCreate();
    ctx.PollAdd(poll, *out.id);
    while ((co_await ctx.PollWait(*app_thread_, poll, 1, Millis(5))).empty()) {
    }
    out.completed = f_.sim.Now();
  }

  // The breakdown for `timing`'s op must be complete, self-consistent, and
  // must account for the whole client-observed latency to the nanosecond.
  void CheckExactBreakdown(const OpTiming& timing, bool is_write,
                           std::uint64_t seq) {
    const OpKey key{client_->descriptor().instance_id, 0, is_write, seq};
    const OpBreakdown* op = hub_.tracer.FindOp(key);
    ASSERT_NE(op, nullptr) << key.ToString();
    ASSERT_TRUE(op->Complete()) << key.ToString();
    for (int p = 1; p < kNumOpPhases; ++p) {
      EXPECT_GE(op->at[p], op->at[p - 1]) << "phase " << p << " regressed";
    }
    EXPECT_EQ(op->PhaseAt(OpPhase::kIssue), timing.issued);
    EXPECT_EQ(op->PhaseAt(OpPhase::kRetired), timing.completed);
    EXPECT_EQ(op->Total(), timing.completed - timing.issued);
    EXPECT_EQ(op->SumOfSegments(), op->Total());
    EXPECT_GT(op->Total(), 0);
  }

  void CheckTraceExports() {
    std::string error;
    EXPECT_TRUE(ValidateChromeTrace(hub_.tracer.ToChromeTraceJson(), &error))
        << error;
  }

  TestFabric f_;
  Hub hub_;
  const rdma::MemoryRegion* pool_mr_;
  std::unique_ptr<CowbirdClient> client_;
  std::unique_ptr<sim::SimThread> app_thread_;
};

class SpotBreakdownTest : public BreakdownTestBase {
 public:
  SpotBreakdownTest() : spot_machine_(f_.sim, 1) {
    spot::SpotAgent::Config ac;
    ac.telemetry = &hub_;
    agent_ = std::make_unique<spot::SpotAgent>(f_.spot_dev, spot_machine_, ac);
    rdma::Device* memories[] = {&f_.memory_dev};
    auto conn = spot::ConnectSpotEngine(f_.spot_dev, f_.compute_dev, memories);
    agent_->AddInstance(client_->descriptor(), conn.to_compute,
                        conn.compute_cq, conn.to_memory, conn.memory_cqs);
    agent_->Start();
  }

  sim::Machine spot_machine_;
  std::unique_ptr<spot::SpotAgent> agent_;
};

class P4BreakdownTest : public BreakdownTestBase {
 public:
  P4BreakdownTest() {
    p4::CowbirdP4Engine::Config ec;
    ec.switch_node_id = kSwitchId;
    ec.telemetry = &hub_;
    engine_ = std::make_unique<p4::CowbirdP4Engine>(f_.sw, ec);
    auto conn = p4::ConnectP4Engine(*engine_, kSwitchId, f_.compute_dev,
                                    f_.memory_dev, 0x800);
    engine_->AddInstance(client_->descriptor(), conn);
    engine_->Start();
  }

  std::unique_ptr<p4::CowbirdP4Engine> engine_;
};

TEST_F(SpotBreakdownTest, ReadLatencyEqualsSumOfSegments) {
  f_.memory_mem.Write(kPoolBase + 0x2000, Pattern(256, 1));
  OpTiming read;
  f_.sim.Spawn([](SpotBreakdownTest& t, OpTiming& out) -> sim::Task<void> {
    co_await t.RunOp(/*is_write=*/false, 0x2000, 256, out);
    t.f_.sim.Halt();
  }(*this, read));
  f_.sim.Run();
  CheckExactBreakdown(read, /*is_write=*/false, /*seq=*/1);
  CheckTraceExports();
}

TEST_F(SpotBreakdownTest, WriteLatencyEqualsSumOfSegments) {
  f_.compute_mem.Write(kHeap, Pattern(512, 2));
  OpTiming write;
  f_.sim.Spawn([](SpotBreakdownTest& t, OpTiming& out) -> sim::Task<void> {
    co_await t.RunOp(/*is_write=*/true, 0x8000, 512, out);
    t.f_.sim.Halt();
  }(*this, write));
  f_.sim.Run();
  CheckExactBreakdown(write, /*is_write=*/true, /*seq=*/1);
}

TEST_F(SpotBreakdownTest, BackToBackOpsEachTileExactly) {
  f_.memory_mem.Write(kPoolBase + 0x2000, Pattern(256, 3));
  f_.compute_mem.Write(kHeap, Pattern(256, 4));
  OpTiming r1, w1, r2;
  f_.sim.Spawn([](SpotBreakdownTest& t, OpTiming& a, OpTiming& b,
                  OpTiming& c) -> sim::Task<void> {
    co_await t.RunOp(false, 0x2000, 256, a);
    co_await t.RunOp(true, 0x8000, 256, b);
    co_await t.RunOp(false, 0x8000, 256, c);
    t.f_.sim.Halt();
  }(*this, r1, w1, r2));
  f_.sim.Run();
  CheckExactBreakdown(r1, false, 1);
  CheckExactBreakdown(w1, true, 1);
  CheckExactBreakdown(r2, false, 2);
  // The engine-side counters surfaced through the registry agree.
  const Snapshot snap = hub_.metrics.TakeSnapshot();
  const std::string labels = "{engine=spot,node=3}";
  EXPECT_EQ(snap.GaugeValue("engine_ops_completed" + labels), 3);
}

TEST_F(P4BreakdownTest, ReadLatencyEqualsSumOfSegments) {
  f_.memory_mem.Write(kPoolBase + 0x2000, Pattern(256, 5));
  OpTiming read;
  f_.sim.Spawn([](P4BreakdownTest& t, OpTiming& out) -> sim::Task<void> {
    co_await t.RunOp(/*is_write=*/false, 0x2000, 256, out);
    t.f_.sim.Halt();
  }(*this, read));
  f_.sim.Run();
  CheckExactBreakdown(read, /*is_write=*/false, /*seq=*/1);
  CheckTraceExports();
}

TEST_F(P4BreakdownTest, WriteLatencyEqualsSumOfSegments) {
  f_.compute_mem.Write(kHeap, Pattern(512, 6));
  OpTiming write;
  f_.sim.Spawn([](P4BreakdownTest& t, OpTiming& out) -> sim::Task<void> {
    co_await t.RunOp(/*is_write=*/true, 0x8000, 512, out);
    t.f_.sim.Halt();
  }(*this, write));
  f_.sim.Run();
  CheckExactBreakdown(write, /*is_write=*/true, /*seq=*/1);
  // In the RMT pipeline parse and execute coincide: that segment is 0 and
  // the engine_queue segment absorbs none of the latency.
  const OpKey key{client_->descriptor().instance_id, 0, true, 1};
  const OpBreakdown* op = hub_.tracer.FindOp(key);
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->Segment(1), 0);
}

}  // namespace
}  // namespace cowbird::telemetry
