// Cross-check between the two independent fault-accounting paths: the
// FaultInjector records every decision it makes (decided_* counts in
// ChaosResult), and each net::Link counts the faults actually applied to
// its traffic, surfaced through the telemetry registry as labeled gauges.
// An instrumented chaos run must show the two in exact agreement, bucket
// by bucket — any drift means a fault was applied but not decided, or
// decided but silently lost.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "chaos/runner.h"
#include "telemetry/hub.h"

namespace cowbird::chaos {
namespace {

// Sums one link gauge family ("link_faults_dropped", ...) across all links
// in the snapshot.
std::uint64_t SumLinkGauge(const telemetry::Snapshot& snap,
                           const std::string& family) {
  std::uint64_t sum = 0;
  bool found = false;
  const std::string prefix = family + "{";
  for (const auto& entry : snap.gauges) {
    if (entry.key.compare(0, prefix.size(), prefix) == 0) {
      sum += static_cast<std::uint64_t>(entry.value);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "no gauges for " << family;
  return sum;
}

ChaosOptions FaultyOptions(std::uint64_t seed) {
  ChaosOptions options;
  options.engine = EngineKind::kSpot;
  options.seed = seed;
  options.workload.threads = 2;
  options.workload.ops_per_thread = 150;
  options.plan.drop_rate = 0.02;
  options.plan.duplicate_rate = 0.02;
  options.plan.reorder_rate = 0.02;
  options.plan.delay_rate = 0.02;
  return options;
}

TEST(TelemetryChaos, LinkGaugesMatchInjectorAuditExactly) {
  telemetry::Hub hub([] { return Nanos{0}; });  // re-seated by RunChaos
  const ChaosResult result = RunChaos(FaultyOptions(7), &hub);
  ASSERT_TRUE(result.Passed()) << result.violations.size() << " violations";
  EXPECT_GT(result.faults_injected, 0u);

  const telemetry::Snapshot& snap = result.telemetry;
  EXPECT_EQ(SumLinkGauge(snap, "link_faults_dropped"),
            result.decided_dropped);
  EXPECT_EQ(SumLinkGauge(snap, "link_faults_duplicated"),
            result.decided_duplicated);
  EXPECT_EQ(SumLinkGauge(snap, "link_faults_reordered"),
            result.decided_reordered);
  EXPECT_EQ(SumLinkGauge(snap, "link_faults_delayed"),
            result.decided_delayed);
  // Something actually flowed, and the engine counters surfaced too.
  EXPECT_GT(SumLinkGauge(snap, "link_packets_delivered"), 0u);
  EXPECT_TRUE(
      snap.GaugeValue("engine_ops_completed{engine=spot,node=3}").has_value());
}

TEST(TelemetryChaos, CleanRunShowsZeroFaultGauges) {
  ChaosOptions options;
  options.engine = EngineKind::kP4;
  options.seed = 3;
  options.workload.ops_per_thread = 100;
  telemetry::Hub hub([] { return Nanos{0}; });
  const ChaosResult result = RunChaos(options, &hub);
  ASSERT_TRUE(result.Passed());
  EXPECT_EQ(result.faults_injected, 0u);
  EXPECT_EQ(SumLinkGauge(result.telemetry, "link_faults_dropped"), 0u);
  EXPECT_EQ(SumLinkGauge(result.telemetry, "link_faults_duplicated"), 0u);
}

TEST(TelemetryChaos, InstrumentedRunMatchesUninstrumentedRun) {
  // Telemetry must be a pure observer: same options, same history digest,
  // with and without a hub.
  const ChaosOptions options = FaultyOptions(11);
  telemetry::Hub hub([] { return Nanos{0}; });
  const ChaosResult with_hub = RunChaos(options, &hub);
  const ChaosResult without_hub = RunChaos(options);
  ASSERT_TRUE(with_hub.Passed());
  ASSERT_TRUE(without_hub.Passed());
  EXPECT_EQ(with_hub.history.size(), without_hub.history.size());
  EXPECT_EQ(with_hub.reads_checked, without_hub.reads_checked);
  EXPECT_EQ(with_hub.writes_completed, without_hub.writes_completed);
  EXPECT_EQ(with_hub.faults_injected, without_hub.faults_injected);
  EXPECT_EQ(with_hub.decided_dropped, without_hub.decided_dropped);
}

TEST(TelemetryChaos, HubSurvivesHarnessTeardownWithFrozenClock) {
  // The run's simulation dies inside RunChaos; the tracer clock must have
  // been frozen at the final virtual time, and the trace must still export
  // and validate after the fact.
  telemetry::Hub hub([] { return Nanos{0}; });
  const ChaosResult result = RunChaos(FaultyOptions(5), &hub);
  ASSERT_TRUE(result.Passed());
  EXPECT_GT(hub.tracer.Now(), 0);
  std::string error;
  EXPECT_TRUE(
      telemetry::ValidateChromeTrace(hub.tracer.ToChromeTraceJson(), &error))
      << error;
  // Post-teardown snapshots no longer see the per-run link gauges.
  const telemetry::Snapshot after = hub.metrics.TakeSnapshot();
  for (const auto& entry : after.gauges) {
    EXPECT_EQ(entry.key.find("link_"), std::string::npos) << entry.key;
  }
}

}  // namespace
}  // namespace cowbird::chaos
