// Edge-case tests for LogHistogram, the distribution type behind every
// telemetry Histogram handle: extreme values (0, UINT64_MAX), bucket
// boundary placement, single-sample quantiles, and ToString stability.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/stats.h"
#include "telemetry/metrics.h"

namespace cowbird {
namespace {

TEST(LogHistogram, ZeroLandsInBucketZero) {
  LogHistogram h;
  h.Add(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.QuantileUpperBound(0.0), 0u);
  EXPECT_EQ(h.QuantileUpperBound(0.5), 0u);
  EXPECT_EQ(h.QuantileUpperBound(0.99), 0u);
}

TEST(LogHistogram, MaxValueLandsInTopBucket) {
  LogHistogram h;
  h.Add(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.bucket(LogHistogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.QuantileUpperBound(0.5),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(LogHistogram, BucketBoundaries) {
  // Bucket 0 holds only 0; bucket i>=1 covers [2^(i-1), 2^i).
  LogHistogram h;
  h.Add(1);  // bucket 1
  h.Add(2);  // bucket 2
  h.Add(3);  // bucket 2
  h.Add(4);  // bucket 3
  h.Add((1ull << 20) - 1);  // bucket 20
  h.Add(1ull << 20);        // bucket 21
  h.Add(1ull << 63);        // bucket 64
  EXPECT_EQ(h.bucket(0), 0u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(20), 1u);
  EXPECT_EQ(h.bucket(21), 1u);
  EXPECT_EQ(h.bucket(64), 1u);
  EXPECT_EQ(h.count(), 7u);
}

TEST(LogHistogram, SingleSampleQuantiles) {
  // With one sample every quantile reports that sample's bucket bound.
  LogHistogram h;
  h.Add(1000);  // bucket 10: [512, 1024)
  for (const double q : {0.0, 0.5, 0.99}) {
    EXPECT_EQ(h.QuantileUpperBound(q), 1023u) << "q=" << q;
  }
}

TEST(LogHistogram, EmptyQuantilesAreZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.QuantileUpperBound(0.5), 0u);
  EXPECT_EQ(h.ToString(), "");
}

TEST(LogHistogram, QuantilesSplitAcrossBuckets) {
  LogHistogram h;
  for (int i = 0; i < 90; ++i) h.Add(100);   // bucket 7: [64, 128)
  for (int i = 0; i < 10; ++i) h.Add(5000);  // bucket 13: [4096, 8192)
  EXPECT_EQ(h.QuantileUpperBound(0.5), 127u);
  EXPECT_EQ(h.QuantileUpperBound(0.89), 127u);
  EXPECT_EQ(h.QuantileUpperBound(0.99), 8191u);
}

TEST(LogHistogram, ToStringIsStable) {
  LogHistogram h;
  h.Add(0);
  h.Add(1);
  h.Add(700);
  h.Add(700);
  const std::string rendered = h.ToString();
  EXPECT_EQ(rendered, "[<2^0]=1 [<2^1]=1 [<2^10]=2 ");
  // Rendering is a pure function of the contents.
  EXPECT_EQ(h.ToString(), rendered);
}

TEST(LogHistogram, RegistrySnapshotCoversExtremes) {
  // The registry's histogram entries survive the same edge cases.
  telemetry::MetricRegistry registry;
  telemetry::Histogram h = registry.GetHistogram("lat");
  h.Observe(0);
  h.Observe(std::numeric_limits<std::uint64_t>::max());
  const telemetry::Snapshot snap = registry.TakeSnapshot();
  const auto* entry = snap.FindHistogram("lat");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->count, 2u);
  // target rank for p50 is exactly the bucket-0 population, so the answer
  // comes from the next non-empty bucket — the quantile is an upper bound.
  EXPECT_EQ(entry->p50, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(entry->p99, std::numeric_limits<std::uint64_t>::max());
  ASSERT_EQ(entry->buckets.size(), 2u);
  EXPECT_EQ(entry->buckets.front().first, 0);
  EXPECT_EQ(entry->buckets.back().first, 64);
}

}  // namespace
}  // namespace cowbird
