// Unit tests for the telemetry layer: metric registry semantics (label
// canonicalization, handle dedup, snapshot determinism), virtual-time span
// tracing, op-lifecycle breakdowns, the Chrome Trace Event export (golden
// file + structural validator), and the minimal JSON writer/parser the
// exports are built on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/units.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace cowbird::telemetry {
namespace {

// ---------------------------------------------------------------------------
// JSON writer / parser
// ---------------------------------------------------------------------------

TEST(TelemetryJson, WriterEmitsCompactDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s");
  w.String("a\"b\\c\n");
  w.Key("n");
  w.Uint(42);
  w.Key("arr");
  w.BeginArray();
  w.Int(-1);
  w.Bool(true);
  w.Double(1.5);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\",\"n\":42,\"arr\":[-1,true,1.5]}");
}

TEST(TelemetryJson, RoundTripsThroughParser) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("probe");
  w.Key("values");
  w.BeginArray();
  w.Uint(1);
  w.Uint(2);
  w.EndArray();
  w.EndObject();

  std::string error;
  const auto doc = ParseJson(w.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_TRUE(doc->IsObject());
  const JsonValue* name = doc->Find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->string, "probe");
  const JsonValue* values = doc->Find("values");
  ASSERT_NE(values, nullptr);
  ASSERT_EQ(values->array.size(), 2u);
  EXPECT_EQ(values->array[1].number, 2.0);
}

TEST(TelemetryJson, ParserRejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{").has_value());
  EXPECT_FALSE(ParseJson("{}garbage").has_value());
  EXPECT_FALSE(ParseJson("{\"a\":1,\"a\":2}").has_value());  // duplicate key
  EXPECT_FALSE(ParseJson("[1,]").has_value());
  std::string error;
  EXPECT_FALSE(ParseJson("nul", &error).has_value());
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Metric registry
// ---------------------------------------------------------------------------

TEST(MetricRegistry, CanonicalKeySortsLabels) {
  EXPECT_EQ(CanonicalMetricKey("ops", {}), "ops");
  EXPECT_EQ(CanonicalMetricKey("ops", {{"b", "2"}, {"a", "1"}}),
            "ops{a=1,b=2}");
}

TEST(MetricRegistry, LabelOrderDedupsToOneSeries) {
  MetricRegistry registry;
  Counter c1 = registry.GetCounter("ops", {{"engine", "p4"}, {"thread", "0"}});
  Counter c2 = registry.GetCounter("ops", {{"thread", "0"}, {"engine", "p4"}});
  c1.Add();
  c2.Add(2);
  EXPECT_EQ(c1.value(), 3u);
  EXPECT_EQ(registry.counter_series(), 1u);
}

TEST(MetricRegistry, InstanceLabelsIsolateSeries) {
  // Two engine instances share metric names but never cells.
  MetricRegistry registry;
  Counter a = registry.GetCounter("engine_ops", {{"instance", "1"}});
  Counter b = registry.GetCounter("engine_ops", {{"instance", "2"}});
  a.Add(5);
  b.Add(7);
  const Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.CounterValue("engine_ops{instance=1}"), 5u);
  EXPECT_EQ(snap.CounterValue("engine_ops{instance=2}"), 7u);
  EXPECT_FALSE(snap.CounterValue("engine_ops{instance=3}").has_value());
}

TEST(MetricRegistry, UnboundHandlesAreSafe) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  counter.Add(3);
  gauge.Set(-4);
  histogram.Observe(100);
  // No registry involved; the dummies absorb the writes.
  SUCCEED();
}

TEST(MetricRegistry, GaugesAndCallbackGauges) {
  MetricRegistry registry;
  Gauge g = registry.GetGauge("depth", {{"qp", "to_compute"}});
  g.Set(12);
  g.Add(-2);
  std::int64_t live = 99;
  registry.RegisterCallbackGauge("live", {}, [&live] { return live; });
  live = 41;  // evaluated only at snapshot time

  Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.GaugeValue("depth{qp=to_compute}"), 10);
  EXPECT_EQ(snap.GaugeValue("live"), 41);

  registry.UnregisterCallbackGauge("live", {});
  registry.UnregisterCallbackGauge("live", {});  // idempotent
  snap = registry.TakeSnapshot();
  EXPECT_FALSE(snap.GaugeValue("live").has_value());
}

TEST(MetricRegistry, ReregisteringCallbackGaugeReplacesIt) {
  // Migration rebinds: the new instance's callback takes over the series.
  MetricRegistry registry;
  registry.RegisterCallbackGauge("inflight", {}, [] { return 1; });
  registry.RegisterCallbackGauge("inflight", {}, [] { return 2; });
  EXPECT_EQ(registry.TakeSnapshot().GaugeValue("inflight"), 2);
}

TEST(MetricRegistry, SnapshotIsDeterministic) {
  auto populate = [](MetricRegistry& registry) {
    // Insertion order differs from canonical order on purpose.
    registry.GetCounter("z_ops", {{"b", "2"}}).Add(9);
    registry.GetCounter("a_ops", {{"x", "1"}, {"a", "0"}}).Add(4);
    registry.GetGauge("depth").Set(-3);
    registry.GetHistogram("lat").Observe(1000);
    registry.GetHistogram("lat").Observe(3);
    registry.RegisterCallbackGauge("cb", {{"k", "v"}}, [] { return 7; });
  };
  MetricRegistry r1, r2;
  populate(r1);
  populate(r2);
  const std::string j1 = r1.TakeSnapshot().ToJson();
  const std::string j2 = r2.TakeSnapshot().ToJson();
  EXPECT_EQ(j1, j2);
  // Same registry snapshotted twice is also byte-identical.
  EXPECT_EQ(r1.TakeSnapshot().ToJson(), j1);

  std::string error;
  const auto doc = ParseJson(j1, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->object.size(), 2u);
  // Canonical (sorted) order, not insertion order.
  EXPECT_EQ(counters->object[0].first, "a_ops{a=0,x=1}");
  EXPECT_EQ(counters->object[1].first, "z_ops{b=2}");
}

TEST(MetricRegistry, SnapshotHistogramEntries) {
  MetricRegistry registry;
  Histogram h = registry.GetHistogram("lat", {{"engine", "spot"}});
  for (int i = 0; i < 100; ++i) h.Observe(1000);  // bucket 10
  const Snapshot snap = registry.TakeSnapshot();
  const auto* entry = snap.FindHistogram("lat{engine=spot}");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->count, 100u);
  EXPECT_EQ(entry->p50, 1023u);
  EXPECT_EQ(entry->p99, 1023u);
  ASSERT_EQ(entry->buckets.size(), 1u);
  EXPECT_EQ(entry->buckets[0].first, 10);
  EXPECT_EQ(entry->buckets[0].second, 100u);
}

// ---------------------------------------------------------------------------
// Span tracer
// ---------------------------------------------------------------------------

TEST(SpanTracer, SpansFollowTheVirtualClock) {
  Nanos now = 0;
  SpanTracer tracer([&now] { return now; });
  now = 1000;
  const auto outer = tracer.Begin("engine/probe", "round");
  now = 1200;
  const auto inner = tracer.Begin("engine/probe", "fetch");
  now = 1500;
  tracer.End(inner);
  now = 2000;
  tracer.End(outer);
  tracer.Instant("engine/gbn", "recover");
  EXPECT_EQ(tracer.span_count(), 2u);
  EXPECT_EQ(tracer.instant_count(), 1u);

  const std::string json = tracer.ToChromeTraceJson();
  std::string error;
  EXPECT_TRUE(ValidateChromeTrace(json, &error)) << error;
}

TEST(SpanTracer, EndOnInvalidHandleIsNoOp) {
  Nanos now = 0;
  SpanTracer tracer([&now] { return now; });
  tracer.End(SpanTracer::SpanHandle{});
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(SpanTracer, CapacityCapsCountDrops) {
  Nanos now = 0;
  SpanTracer tracer([&now] { return now; });
  tracer.SetSpanCapacity(2);
  tracer.SetInstantCapacity(1);
  tracer.SetOpCapacity(1);
  (void)tracer.Begin("t", "a");
  (void)tracer.Begin("t", "b");
  (void)tracer.Begin("t", "c");  // dropped
  tracer.Instant("t", "x");
  tracer.Instant("t", "y");  // dropped
  tracer.RecordOp(OpKey{1, 0, false, 1}, OpPhase::kIssue);
  tracer.RecordOp(OpKey{1, 0, false, 2}, OpPhase::kIssue);  // dropped
  EXPECT_EQ(tracer.dropped_spans(), 1u);
  EXPECT_EQ(tracer.dropped_instants(), 1u);
  EXPECT_EQ(tracer.dropped_ops(), 1u);
  // Re-stamping a tracked op is not a drop.
  tracer.RecordOp(OpKey{1, 0, false, 1}, OpPhase::kRetired);
  EXPECT_EQ(tracer.dropped_ops(), 1u);
}

TEST(SpanTracer, OpBreakdownSegmentsTileTheTotal) {
  Nanos now = 0;
  SpanTracer tracer([&now] { return now; });
  const OpKey key{7, 3, true, 12};
  const Nanos stamps[] = {100, 250, 300, 900, 1400};
  for (int p = 0; p < kNumOpPhases; ++p) {
    tracer.RecordOpAt(key, static_cast<OpPhase>(p), stamps[p]);
  }
  const OpBreakdown* op = tracer.FindOp(key);
  ASSERT_NE(op, nullptr);
  EXPECT_TRUE(op->Complete());
  EXPECT_EQ(op->Total(), 1300);
  EXPECT_EQ(op->SumOfSegments(), op->Total());
  EXPECT_EQ(op->Segment(0), 150);
  EXPECT_EQ(op->Segment(3), 500);
  EXPECT_EQ(key.ToString(), "i7/t3/W#12");
}

TEST(SpanTracer, FirstStampWins) {
  // A GBN retransmit or crash migration can re-parse an op; its lifecycle
  // started at the first observation.
  Nanos now = 0;
  SpanTracer tracer([&now] { return now; });
  const OpKey key{1, 0, false, 1};
  tracer.RecordOpAt(key, OpPhase::kParsed, 500);
  tracer.RecordOpAt(key, OpPhase::kParsed, 900);
  EXPECT_EQ(tracer.FindOp(key)->PhaseAt(OpPhase::kParsed), 500);
}

TEST(SpanTracer, ChromeTraceGolden) {
  // Byte-exact golden for a tiny deterministic trace: one closed span, one
  // instant, and one fully recorded op. Loadable in chrome://tracing.
  Nanos now = 0;
  SpanTracer tracer([&now] { return now; });
  now = 1000;
  const auto span = tracer.Begin("p4/i1/probe", "probe");
  now = 2500;
  tracer.End(span);
  now = 3000;
  tracer.Instant("p4/gbn", "recover");
  const OpKey key{1, 0, false, 1};
  tracer.RecordOpAt(key, OpPhase::kIssue, 100);
  tracer.RecordOpAt(key, OpPhase::kParsed, 1100);
  tracer.RecordOpAt(key, OpPhase::kExecute, 1100);
  tracer.RecordOpAt(key, OpPhase::kDone, 2100);
  tracer.RecordOpAt(key, OpPhase::kRetired, 3100);

  const std::string json = tracer.ToChromeTraceJson();
  std::string error;
  ASSERT_TRUE(ValidateChromeTrace(json, &error)) << error << "\n" << json;

  const std::string golden =
      "{\"displayTimeUnit\":\"ns\",\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"cowbird-sim\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"ops/i1/t0\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":2,"
      "\"args\":{\"name\":\"p4/gbn\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":3,"
      "\"args\":{\"name\":\"p4/i1/probe\"}},"
      "{\"name\":\"R#1\",\"cat\":\"op\",\"ph\":\"b\",\"ts\":0.100,\"pid\":1,"
      "\"tid\":1,\"id\":\"i1/t0/R#1\"},"
      "{\"name\":\"probe_pickup\",\"cat\":\"op\",\"ph\":\"b\",\"ts\":0.100,"
      "\"pid\":1,\"tid\":1,\"id\":\"i1/t0/R#1\"},"
      "{\"name\":\"probe\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":1.000,"
      "\"pid\":1,\"tid\":3,\"dur\":1.500},"
      "{\"name\":\"probe_pickup\",\"cat\":\"op\",\"ph\":\"e\",\"ts\":1.100,"
      "\"pid\":1,\"tid\":1,\"id\":\"i1/t0/R#1\"},"
      "{\"name\":\"engine_queue\",\"cat\":\"op\",\"ph\":\"b\",\"ts\":1.100,"
      "\"pid\":1,\"tid\":1,\"id\":\"i1/t0/R#1\"},"
      "{\"name\":\"engine_queue\",\"cat\":\"op\",\"ph\":\"e\",\"ts\":1.100,"
      "\"pid\":1,\"tid\":1,\"id\":\"i1/t0/R#1\"},"
      "{\"name\":\"fabric_pool\",\"cat\":\"op\",\"ph\":\"b\",\"ts\":1.100,"
      "\"pid\":1,\"tid\":1,\"id\":\"i1/t0/R#1\"},"
      "{\"name\":\"fabric_pool\",\"cat\":\"op\",\"ph\":\"e\",\"ts\":2.100,"
      "\"pid\":1,\"tid\":1,\"id\":\"i1/t0/R#1\"},"
      "{\"name\":\"publish_deliver\",\"cat\":\"op\",\"ph\":\"b\",\"ts\":2.100,"
      "\"pid\":1,\"tid\":1,\"id\":\"i1/t0/R#1\"},"
      "{\"name\":\"recover\",\"cat\":\"span\",\"ph\":\"i\",\"ts\":3.000,"
      "\"pid\":1,\"tid\":2,\"s\":\"t\"},"
      "{\"name\":\"publish_deliver\",\"cat\":\"op\",\"ph\":\"e\",\"ts\":3.100,"
      "\"pid\":1,\"tid\":1,\"id\":\"i1/t0/R#1\"},"
      "{\"name\":\"R#1\",\"cat\":\"op\",\"ph\":\"e\",\"ts\":3.100,\"pid\":1,"
      "\"tid\":1,\"id\":\"i1/t0/R#1\"}"
      "]}";
  EXPECT_EQ(json, golden);
}

TEST(SpanTracer, OpenSpansClampToNow) {
  Nanos now = 100;
  SpanTracer tracer([&now] { return now; });
  (void)tracer.Begin("t", "open");
  now = 700;
  const std::string json = tracer.ToChromeTraceJson();
  std::string error;
  EXPECT_TRUE(ValidateChromeTrace(json, &error)) << error;
  EXPECT_NE(json.find("\"dur\":0.600"), std::string::npos) << json;
}

TEST(SpanTracer, SinglePhaseOpExportsAsInstant) {
  Nanos now = 0;
  SpanTracer tracer([&now] { return now; });
  tracer.RecordOpAt(OpKey{2, 1, true, 5}, OpPhase::kParsed, 400);
  const std::string json = tracer.ToChromeTraceJson();
  std::string error;
  EXPECT_TRUE(ValidateChromeTrace(json, &error)) << error;
  EXPECT_NE(json.find("\"name\":\"W#5:parsed\""), std::string::npos) << json;
}

TEST(ValidateChromeTrace, RejectsStructuralViolations) {
  std::string error;
  EXPECT_FALSE(ValidateChromeTrace("not json", &error));
  EXPECT_FALSE(ValidateChromeTrace("{}", &error));  // no traceEvents
  // X without dur.
  EXPECT_FALSE(ValidateChromeTrace(
      "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":1,\"pid\":1,"
      "\"tid\":1}]}",
      &error));
  // Unbalanced async pair.
  EXPECT_FALSE(ValidateChromeTrace(
      "{\"traceEvents\":[{\"name\":\"a\",\"cat\":\"op\",\"ph\":\"b\","
      "\"ts\":1,\"pid\":1,\"tid\":1,\"id\":\"x\"}]}",
      &error));
  // 'e' before its 'b'.
  EXPECT_FALSE(ValidateChromeTrace(
      "{\"traceEvents\":[{\"name\":\"a\",\"cat\":\"op\",\"ph\":\"e\","
      "\"ts\":1,\"pid\":1,\"tid\":1,\"id\":\"x\"}]}",
      &error));
  // Well-formed minimal trace passes.
  EXPECT_TRUE(ValidateChromeTrace(
      "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":1,\"pid\":1,"
      "\"tid\":1,\"dur\":0}]}",
      &error))
      << error;
}

}  // namespace
}  // namespace cowbird::telemetry
