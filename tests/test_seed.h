// Seed plumbing for randomized tests.
//
// Every randomized test derives its RNG streams from one base seed obtained
// here: COWBIRD_TEST_SEED in the environment overrides the default, and
// COWBIRD_SCOPED_SEED attaches the chosen seed to every assertion failure
// in the enclosing scope — a red run always prints the seed that reproduces
// it (re-run with COWBIRD_TEST_SEED=<seed>).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

namespace cowbird::testing {

inline std::uint64_t TestSeed(std::uint64_t default_seed) {
  if (const char* env = std::getenv("COWBIRD_TEST_SEED")) {
    char* end = nullptr;
    const std::uint64_t parsed = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return parsed;
  }
  return default_seed;
}

}  // namespace cowbird::testing

#define COWBIRD_SCOPED_SEED(seed) \
  SCOPED_TRACE(::testing::Message() << "COWBIRD_TEST_SEED=" << (seed))
