// The topology graph and its partitioner (net/topology.h):
//
//   * Topology round-trips nodes (kind, name, fabric address) and edges
//     (endpoints, propagation, auto-generated names).
//   * PartitionTopology assigns one domain per partition group with domain
//     ids in first-appearance order, emits cut edges per direction in edge
//     order, and derives the epoch horizon as the minimum lookahead over
//     cut edges only.
//   * A zero-propagation cut is reported as a structured error naming the
//     edge and both endpoints; intra-domain edges never trip it.
//   * FabricDomains aliases domain 0 to the caller's root Simulation,
//     creates no group for a single-domain partition, and drives an N-way
//     DomainGroup bit-identically for any worker count.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "net/topology.h"
#include "sim/parallel.h"
#include "sim/simulation.h"
#include "workload/testbed.h"

namespace cowbird {
namespace {

using net::FabricDomains;
using net::Partition;
using net::PartitionTopology;
using net::TopoNodeId;
using net::TopoNodeKind;
using net::Topology;

// ------------------------------------------------------------------- Topology

TEST(TopologyTest, RoundTripsNodesAndEdges) {
  Topology topo;
  const TopoNodeId host =
      topo.AddNode(TopoNodeKind::kComputeHost, "client0", /*address=*/1);
  const TopoNodeId tor = topo.AddNode(TopoNodeKind::kSwitch, "tor");
  const TopoNodeId mem =
      topo.AddNode(TopoNodeKind::kMemoryServer, "mem0", /*address=*/2);
  const int uplink = topo.AddEdge(host, tor, 200, "uplink[client0]");
  const int auto_named = topo.AddEdge(mem, tor, 150);

  ASSERT_EQ(topo.node_count(), 3);
  ASSERT_EQ(topo.edge_count(), 2);
  EXPECT_EQ(topo.node(host).kind, TopoNodeKind::kComputeHost);
  EXPECT_EQ(topo.node(host).name, "client0");
  EXPECT_EQ(topo.node(host).address, 1u);
  EXPECT_EQ(topo.node(tor).address, 0u);
  EXPECT_EQ(topo.edge(uplink).a, host);
  EXPECT_EQ(topo.edge(uplink).b, tor);
  EXPECT_EQ(topo.edge(uplink).propagation, 200);
  EXPECT_EQ(topo.edge(uplink).name, "uplink[client0]");
  // Unnamed edges self-describe from their endpoint names.
  EXPECT_EQ(topo.edge(auto_named).name, "mem0<->tor");
}

TEST(TopologyTest, KindNamesCoverEveryKind) {
  EXPECT_STREQ(net::TopoNodeKindName(TopoNodeKind::kComputeHost), "compute");
  EXPECT_STREQ(net::TopoNodeKindName(TopoNodeKind::kMemoryServer), "memory");
  EXPECT_STREQ(net::TopoNodeKindName(TopoNodeKind::kSpotHost), "spot");
  EXPECT_STREQ(net::TopoNodeKindName(TopoNodeKind::kBystanderHost),
               "bystander");
  EXPECT_STREQ(net::TopoNodeKindName(TopoNodeKind::kSwitch), "switch");
}

// ------------------------------------------------------------------ Partition

TEST(PartitionTest, UngroupedNodesPartitionAlone) {
  Topology topo;
  topo.AddNode(TopoNodeKind::kComputeHost, "a");
  topo.AddNode(TopoNodeKind::kSwitch, "b");
  topo.AddNode(TopoNodeKind::kMemoryServer, "c");
  const Partition part = PartitionTopology(topo);
  EXPECT_EQ(part.domain_count(), 3);
  for (TopoNodeId n = 0; n < 3; ++n) EXPECT_EQ(part.domain_of(n), n);
}

TEST(PartitionTest, GroupsFuseWithFirstAppearanceDomainOrder) {
  Topology topo;
  const TopoNodeId n0 = topo.AddNode(TopoNodeKind::kComputeHost, "n0");
  const TopoNodeId n1 = topo.AddNode(TopoNodeKind::kSwitch, "n1");
  const TopoNodeId n2 = topo.AddNode(TopoNodeKind::kMemoryServer, "n2");
  const TopoNodeId n3 = topo.AddNode(TopoNodeKind::kSpotHost, "n3");
  // Group tags are arbitrary labels; domain ids follow first appearance in
  // node order, so node 0 always lands in domain 0.
  topo.SetGroup(n0, 7);
  topo.SetGroup(n2, 7);
  topo.SetGroup(n3, 2);
  const Partition part = PartitionTopology(topo);
  EXPECT_EQ(part.domain_count(), 3);
  EXPECT_EQ(part.domain_of(n0), 0);
  EXPECT_EQ(part.domain_of(n1), 1);  // ungrouped singleton
  EXPECT_EQ(part.domain_of(n2), 0);
  EXPECT_EQ(part.domain_of(n3), 2);
}

TEST(PartitionTest, GroupAllCollapsesToOneDomainWithNoCuts) {
  Topology topo;
  const TopoNodeId a = topo.AddNode(TopoNodeKind::kComputeHost, "a");
  const TopoNodeId b = topo.AddNode(TopoNodeKind::kSwitch, "b");
  topo.AddEdge(a, b, 0);  // zero propagation is fine intra-domain
  topo.GroupAll(0);
  const Partition part = PartitionTopology(topo);
  EXPECT_EQ(part.domain_count(), 1);
  EXPECT_TRUE(part.cut_edges().empty());
  EXPECT_EQ(part.lookahead(), sim::kNoEventTime);
  EXPECT_FALSE(part.zero_lookahead_error().has_value());
}

TEST(PartitionTest, CutEdgesEmittedPerDirectionWithMinLookahead) {
  Topology topo;
  const TopoNodeId a = topo.AddNode(TopoNodeKind::kComputeHost, "a");
  const TopoNodeId b = topo.AddNode(TopoNodeKind::kSwitch, "b");
  const TopoNodeId c = topo.AddNode(TopoNodeKind::kMemoryServer, "c");
  const int ab = topo.AddEdge(a, b, 200);
  const int bc = topo.AddEdge(b, c, 150);
  // Fuse b and c: only a<->b is cut; b<->c places no bound on the horizon.
  topo.SetGroup(b, 1);
  topo.SetGroup(c, 1);
  const Partition part = PartitionTopology(topo);
  ASSERT_EQ(part.domain_count(), 2);
  ASSERT_EQ(part.cut_edges().size(), 2u);
  EXPECT_EQ(part.cut_edges()[0].edge, ab);
  EXPECT_EQ(part.cut_edges()[0].src_domain, 0);
  EXPECT_EQ(part.cut_edges()[0].dst_domain, 1);
  EXPECT_EQ(part.cut_edges()[1].src_domain, 1);
  EXPECT_EQ(part.cut_edges()[1].dst_domain, 0);
  EXPECT_EQ(part.lookahead(), 200);
  (void)bc;

  // Split the fused pair too: now both edges are cut and the horizon drops
  // to the smaller propagation.
  topo.SetGroup(c, 2);
  const Partition finer = PartitionTopology(topo);
  EXPECT_EQ(finer.domain_count(), 3);
  EXPECT_EQ(finer.cut_edges().size(), 4u);
  EXPECT_EQ(finer.lookahead(), 150);
}

TEST(PartitionTest, ZeroLookaheadCutNamesEdgeAndBothEndpoints) {
  Topology topo;
  const TopoNodeId a = topo.AddNode(TopoNodeKind::kComputeHost, "clientX");
  const TopoNodeId b = topo.AddNode(TopoNodeKind::kSwitch, "torY");
  topo.AddEdge(a, b, 0, "uplink[clientX]");
  const Partition part = PartitionTopology(topo);
  ASSERT_TRUE(part.zero_lookahead_error().has_value());
  const std::string& error = *part.zero_lookahead_error();
  EXPECT_NE(error.find("zero-lookahead cut"), std::string::npos) << error;
  EXPECT_NE(error.find("uplink[clientX]"), std::string::npos) << error;
  EXPECT_NE(error.find("'clientX' (domain 0)"), std::string::npos) << error;
  EXPECT_NE(error.find("'torY' (domain 1)"), std::string::npos) << error;
}

TEST(PartitionTest, DescribeListsDomainMapCutsAndHorizon) {
  Topology topo;
  const TopoNodeId a = topo.AddNode(TopoNodeKind::kComputeHost, "host");
  const TopoNodeId b = topo.AddNode(TopoNodeKind::kSwitch, "tor");
  topo.AddEdge(a, b, 250);
  const Partition part = PartitionTopology(topo);
  const std::string text = part.Describe(topo);
  EXPECT_NE(text.find("2 domains"), std::string::npos) << text;
  EXPECT_NE(text.find("'host' (compute) -> domain 0"), std::string::npos)
      << text;
  EXPECT_NE(text.find("'tor' (switch) -> domain 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("epoch horizon: 250 ns"), std::string::npos) << text;
}

// -------------------------------------------------------------- FabricDomains

TEST(FabricDomainsTest, SingleDomainAliasesRootWithNoGroup) {
  Topology topo;
  topo.AddNode(TopoNodeKind::kComputeHost, "a");
  topo.AddNode(TopoNodeKind::kSwitch, "b");
  topo.AddEdge(0, 1, 100);
  topo.GroupAll(0);
  const Partition part = PartitionTopology(topo);
  sim::Simulation root;
  FabricDomains fabric(root, part);
  EXPECT_EQ(fabric.group(), nullptr);
  EXPECT_EQ(&fabric.sim_for(0), &root);
  EXPECT_EQ(&fabric.sim_for(1), &root);
  bool ran = false;
  root.ScheduleAt(10, [&] { ran = true; });
  fabric.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(fabric.Now(), root.Now());
  EXPECT_EQ(fabric.EventsProcessed(), root.EventsProcessed());
}

TEST(FabricDomainsTest, SplitOwnsOneSimulationPerExtraDomain) {
  Topology topo;
  topo.AddNode(TopoNodeKind::kComputeHost, "a");
  topo.AddNode(TopoNodeKind::kSwitch, "b");
  topo.AddNode(TopoNodeKind::kMemoryServer, "c");
  topo.AddEdge(0, 1, 100);
  topo.AddEdge(1, 2, 100);
  const Partition part = PartitionTopology(topo);
  sim::Simulation root;
  FabricDomains fabric(root, part, /*workers=*/1);
  ASSERT_NE(fabric.group(), nullptr);
  EXPECT_EQ(fabric.group()->domain_count(), 3);
  EXPECT_EQ(&fabric.domain_sim(0), &root);
  EXPECT_NE(&fabric.domain_sim(1), &root);
  EXPECT_NE(&fabric.domain_sim(2), &fabric.domain_sim(1));
}

// A 4-domain chain driven end to end: an event hops domain to domain across
// the cut edges. The arrival times and event totals must be identical for
// any worker count — the N-way generalization of the 2-domain pin.
TEST(FabricDomainsTest, NWayChainBitIdenticalAcrossWorkerCounts) {
  constexpr int kNodes = 4;
  constexpr Nanos kHop = 100;
  struct Outcome {
    std::vector<Nanos> arrival;
    std::uint64_t events = 0;
    bool operator==(const Outcome& o) const {
      return arrival == o.arrival && events == o.events;
    }
  };
  auto run = [&](int workers) {
    Topology topo;
    for (int n = 0; n < kNodes; ++n) {
      topo.AddNode(TopoNodeKind::kComputeHost, "n" + std::to_string(n));
    }
    for (int n = 0; n + 1 < kNodes; ++n) topo.AddEdge(n, n + 1, kHop);
    const Partition part = PartitionTopology(topo);
    sim::Simulation root;
    FabricDomains fabric(root, part, workers);
    sim::DomainGroup* group = fabric.group();
    // Register every cut edge the way a wired testbed's links would.
    for (const net::CutEdgeInfo& cut : part.cut_edges()) {
      sim::CutEdge edge;
      edge.src = cut.src_domain;
      edge.dst = cut.dst_domain;
      edge.lookahead = cut.lookahead;
      edge.link = topo.edge(cut.edge).name;
      edge.src_node = topo.node(topo.edge(cut.edge).a).name;
      edge.dst_node = topo.node(topo.edge(cut.edge).b).name;
      group->NoteCrossLink(edge);
    }

    Outcome outcome;
    outcome.arrival.assign(kNodes, -1);
    std::function<void(int)> hop;
    hop = [&](int d) {
      outcome.arrival[static_cast<std::size_t>(d)] =
          fabric.domain_sim(d).Now();
      if (d + 1 < kNodes) {
        group->CrossPost(d, d + 1, fabric.domain_sim(d).Now() + kHop,
                         [&hop, d] { hop(d + 1); });
      }
    };
    fabric.domain_sim(0).ScheduleAt(50, [&] { hop(0); });
    fabric.Run();
    outcome.events = fabric.EventsProcessed();
    return outcome;
  };

  const Outcome one = run(1);
  EXPECT_EQ(one.arrival, (std::vector<Nanos>{50, 150, 250, 350}));
  for (int workers : {2, 4, 8}) {
    EXPECT_TRUE(run(workers) == one) << "workers=" << workers;
  }
}

// ----------------------------------------------------- testbeds as topologies

TEST(TestbedTopologyTest, SerialAndSplitReduceToExpectedPartitions) {
  workload::Testbed serial;
  EXPECT_EQ(serial.partition.domain_count(), 1);
  EXPECT_EQ(serial.group, nullptr);

  workload::Testbed split(/*compute_cores=*/16, BitRate::Gbps(100),
                          /*split_domains=*/true, /*split_workers=*/1);
  EXPECT_EQ(split.partition.domain_count(), 2);
  ASSERT_NE(split.group, nullptr);
  // The PR 5 layout through the general partitioner: the compute host alone
  // in domain 0, switch + memory/spot/bystander fused in domain 1.
  EXPECT_EQ(split.partition.domain_of(workload::Testbed::kComputeNode), 0);
  EXPECT_EQ(split.partition.domain_of(workload::Testbed::kSwitchNode), 1);
}

TEST(TestbedTopologyTest, FanInSplitsOneDomainPerNode) {
  workload::FanInConfig cfg;
  cfg.clients = 3;
  cfg.memory_servers = 2;
  cfg.split = true;
  cfg.split_workers = 1;
  workload::FanInTestbed bed(cfg);
  // 3 clients + switch + 2 memory servers + spot host = 7 nodes, 7 domains.
  EXPECT_EQ(bed.topo.node_count(), 7);
  EXPECT_EQ(bed.partition.domain_count(), 7);
  ASSERT_TRUE(bed.split());
  // Every client uplink is a cut edge: 6 directed cuts per... 6 edges × 2.
  EXPECT_EQ(bed.partition.cut_edges().size(), 12u);
  EXPECT_GT(bed.partition.lookahead(), 0);

  workload::FanInConfig serial_cfg;
  serial_cfg.clients = 3;
  serial_cfg.memory_servers = 2;
  workload::FanInTestbed serial_bed(serial_cfg);
  EXPECT_EQ(serial_bed.partition.domain_count(), 1);
  EXPECT_FALSE(serial_bed.split());
}

}  // namespace
}  // namespace cowbird
