// The topology graph and its partitioner (net/topology.h):
//
//   * Topology round-trips nodes (kind, name, fabric address) and edges
//     (endpoints, propagation, auto-generated names).
//   * PartitionTopology assigns one domain per partition group with domain
//     ids in first-appearance order, emits cut edges per direction in edge
//     order, and derives the epoch horizon as the minimum lookahead over
//     cut edges only.
//   * A zero-propagation cut is reported as a structured error naming the
//     edge and both endpoints; intra-domain edges never trip it.
//   * FabricDomains aliases domain 0 to the caller's root Simulation,
//     creates no group for a single-domain partition, and drives an N-way
//     DomainGroup bit-identically for any worker count.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "net/topology.h"
#include "sim/parallel.h"
#include "sim/simulation.h"
#include "workload/testbed.h"

namespace cowbird {
namespace {

using net::FabricDomains;
using net::Partition;
using net::PartitionTopology;
using net::TopoNodeId;
using net::TopoNodeKind;
using net::Topology;

// ------------------------------------------------------------------- Topology

TEST(TopologyTest, RoundTripsNodesAndEdges) {
  Topology topo;
  const TopoNodeId host =
      topo.AddNode(TopoNodeKind::kComputeHost, "client0", /*address=*/1);
  const TopoNodeId tor = topo.AddNode(TopoNodeKind::kSwitch, "tor");
  const TopoNodeId mem =
      topo.AddNode(TopoNodeKind::kMemoryServer, "mem0", /*address=*/2);
  const int uplink = topo.AddEdge(host, tor, 200, "uplink[client0]");
  const int auto_named = topo.AddEdge(mem, tor, 150);

  ASSERT_EQ(topo.node_count(), 3);
  ASSERT_EQ(topo.edge_count(), 2);
  EXPECT_EQ(topo.node(host).kind, TopoNodeKind::kComputeHost);
  EXPECT_EQ(topo.node(host).name, "client0");
  EXPECT_EQ(topo.node(host).address, 1u);
  EXPECT_EQ(topo.node(tor).address, 0u);
  EXPECT_EQ(topo.edge(uplink).a, host);
  EXPECT_EQ(topo.edge(uplink).b, tor);
  EXPECT_EQ(topo.edge(uplink).propagation, 200);
  EXPECT_EQ(topo.edge(uplink).name, "uplink[client0]");
  // Unnamed edges self-describe from their endpoint names.
  EXPECT_EQ(topo.edge(auto_named).name, "mem0<->tor");
}

TEST(TopologyTest, KindNamesCoverEveryKind) {
  EXPECT_STREQ(net::TopoNodeKindName(TopoNodeKind::kComputeHost), "compute");
  EXPECT_STREQ(net::TopoNodeKindName(TopoNodeKind::kMemoryServer), "memory");
  EXPECT_STREQ(net::TopoNodeKindName(TopoNodeKind::kSpotHost), "spot");
  EXPECT_STREQ(net::TopoNodeKindName(TopoNodeKind::kBystanderHost),
               "bystander");
  EXPECT_STREQ(net::TopoNodeKindName(TopoNodeKind::kSwitch), "switch");
}

// ------------------------------------------------------------------ Partition

TEST(PartitionTest, UngroupedNodesPartitionAlone) {
  Topology topo;
  topo.AddNode(TopoNodeKind::kComputeHost, "a");
  topo.AddNode(TopoNodeKind::kSwitch, "b");
  topo.AddNode(TopoNodeKind::kMemoryServer, "c");
  const Partition part = PartitionTopology(topo);
  EXPECT_EQ(part.domain_count(), 3);
  for (TopoNodeId n = 0; n < 3; ++n) EXPECT_EQ(part.domain_of(n), n);
}

TEST(PartitionTest, GroupsFuseWithFirstAppearanceDomainOrder) {
  Topology topo;
  const TopoNodeId n0 = topo.AddNode(TopoNodeKind::kComputeHost, "n0");
  const TopoNodeId n1 = topo.AddNode(TopoNodeKind::kSwitch, "n1");
  const TopoNodeId n2 = topo.AddNode(TopoNodeKind::kMemoryServer, "n2");
  const TopoNodeId n3 = topo.AddNode(TopoNodeKind::kSpotHost, "n3");
  // Group tags are arbitrary labels; domain ids follow first appearance in
  // node order, so node 0 always lands in domain 0.
  topo.SetGroup(n0, 7);
  topo.SetGroup(n2, 7);
  topo.SetGroup(n3, 2);
  const Partition part = PartitionTopology(topo);
  EXPECT_EQ(part.domain_count(), 3);
  EXPECT_EQ(part.domain_of(n0), 0);
  EXPECT_EQ(part.domain_of(n1), 1);  // ungrouped singleton
  EXPECT_EQ(part.domain_of(n2), 0);
  EXPECT_EQ(part.domain_of(n3), 2);
}

TEST(PartitionTest, GroupAllCollapsesToOneDomainWithNoCuts) {
  Topology topo;
  const TopoNodeId a = topo.AddNode(TopoNodeKind::kComputeHost, "a");
  const TopoNodeId b = topo.AddNode(TopoNodeKind::kSwitch, "b");
  topo.AddEdge(a, b, 0);  // zero propagation is fine intra-domain
  topo.GroupAll(0);
  const Partition part = PartitionTopology(topo);
  EXPECT_EQ(part.domain_count(), 1);
  EXPECT_TRUE(part.cut_edges().empty());
  EXPECT_EQ(part.lookahead(), sim::kNoEventTime);
  EXPECT_FALSE(part.zero_lookahead_error().has_value());
}

TEST(PartitionTest, CutEdgesEmittedPerDirectionWithMinLookahead) {
  Topology topo;
  const TopoNodeId a = topo.AddNode(TopoNodeKind::kComputeHost, "a");
  const TopoNodeId b = topo.AddNode(TopoNodeKind::kSwitch, "b");
  const TopoNodeId c = topo.AddNode(TopoNodeKind::kMemoryServer, "c");
  const int ab = topo.AddEdge(a, b, 200);
  const int bc = topo.AddEdge(b, c, 150);
  // Fuse b and c: only a<->b is cut; b<->c places no bound on the horizon.
  topo.SetGroup(b, 1);
  topo.SetGroup(c, 1);
  const Partition part = PartitionTopology(topo);
  ASSERT_EQ(part.domain_count(), 2);
  ASSERT_EQ(part.cut_edges().size(), 2u);
  EXPECT_EQ(part.cut_edges()[0].edge, ab);
  EXPECT_EQ(part.cut_edges()[0].src_domain, 0);
  EXPECT_EQ(part.cut_edges()[0].dst_domain, 1);
  EXPECT_EQ(part.cut_edges()[1].src_domain, 1);
  EXPECT_EQ(part.cut_edges()[1].dst_domain, 0);
  EXPECT_EQ(part.lookahead(), 200);
  (void)bc;

  // Split the fused pair too: now both edges are cut and the horizon drops
  // to the smaller propagation.
  topo.SetGroup(c, 2);
  const Partition finer = PartitionTopology(topo);
  EXPECT_EQ(finer.domain_count(), 3);
  EXPECT_EQ(finer.cut_edges().size(), 4u);
  EXPECT_EQ(finer.lookahead(), 150);
}

TEST(PartitionTest, ZeroLookaheadCutNamesEdgeAndBothEndpoints) {
  Topology topo;
  const TopoNodeId a = topo.AddNode(TopoNodeKind::kComputeHost, "clientX");
  const TopoNodeId b = topo.AddNode(TopoNodeKind::kSwitch, "torY");
  topo.AddEdge(a, b, 0, "uplink[clientX]");
  const Partition part = PartitionTopology(topo);
  ASSERT_TRUE(part.zero_lookahead_error().has_value());
  const std::string& error = *part.zero_lookahead_error();
  EXPECT_NE(error.find("zero-lookahead cut"), std::string::npos) << error;
  EXPECT_NE(error.find("uplink[clientX]"), std::string::npos) << error;
  EXPECT_NE(error.find("'clientX' (domain 0)"), std::string::npos) << error;
  EXPECT_NE(error.find("'torY' (domain 1)"), std::string::npos) << error;
}

TEST(PartitionTest, DescribeListsDomainMapCutsAndHorizon) {
  Topology topo;
  const TopoNodeId a = topo.AddNode(TopoNodeKind::kComputeHost, "host");
  const TopoNodeId b = topo.AddNode(TopoNodeKind::kSwitch, "tor");
  topo.AddEdge(a, b, 250);
  const Partition part = PartitionTopology(topo);
  const std::string text = part.Describe(topo);
  EXPECT_NE(text.find("2 domains"), std::string::npos) << text;
  EXPECT_NE(text.find("'host' (compute) -> domain 0"), std::string::npos)
      << text;
  EXPECT_NE(text.find("'tor' (switch) -> domain 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("epoch horizon: 250 ns"), std::string::npos) << text;
}

// -------------------------------------------------------------- FabricDomains

TEST(FabricDomainsTest, SingleDomainAliasesRootWithNoGroup) {
  Topology topo;
  topo.AddNode(TopoNodeKind::kComputeHost, "a");
  topo.AddNode(TopoNodeKind::kSwitch, "b");
  topo.AddEdge(0, 1, 100);
  topo.GroupAll(0);
  const Partition part = PartitionTopology(topo);
  sim::Simulation root;
  FabricDomains fabric(root, part);
  EXPECT_EQ(fabric.group(), nullptr);
  EXPECT_EQ(&fabric.sim_for(0), &root);
  EXPECT_EQ(&fabric.sim_for(1), &root);
  bool ran = false;
  root.ScheduleAt(10, [&] { ran = true; });
  fabric.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(fabric.Now(), root.Now());
  EXPECT_EQ(fabric.EventsProcessed(), root.EventsProcessed());
}

TEST(FabricDomainsTest, SplitOwnsOneSimulationPerExtraDomain) {
  Topology topo;
  topo.AddNode(TopoNodeKind::kComputeHost, "a");
  topo.AddNode(TopoNodeKind::kSwitch, "b");
  topo.AddNode(TopoNodeKind::kMemoryServer, "c");
  topo.AddEdge(0, 1, 100);
  topo.AddEdge(1, 2, 100);
  const Partition part = PartitionTopology(topo);
  sim::Simulation root;
  FabricDomains fabric(root, part, /*workers=*/1);
  ASSERT_NE(fabric.group(), nullptr);
  EXPECT_EQ(fabric.group()->domain_count(), 3);
  EXPECT_EQ(&fabric.domain_sim(0), &root);
  EXPECT_NE(&fabric.domain_sim(1), &root);
  EXPECT_NE(&fabric.domain_sim(2), &fabric.domain_sim(1));
}

// A 4-domain chain driven end to end: an event hops domain to domain across
// the cut edges. The arrival times and event totals must be identical for
// any worker count — the N-way generalization of the 2-domain pin.
TEST(FabricDomainsTest, NWayChainBitIdenticalAcrossWorkerCounts) {
  constexpr int kNodes = 4;
  constexpr Nanos kHop = 100;
  struct Outcome {
    std::vector<Nanos> arrival;
    std::uint64_t events = 0;
    bool operator==(const Outcome& o) const {
      return arrival == o.arrival && events == o.events;
    }
  };
  auto run = [&](int workers) {
    Topology topo;
    for (int n = 0; n < kNodes; ++n) {
      topo.AddNode(TopoNodeKind::kComputeHost, "n" + std::to_string(n));
    }
    for (int n = 0; n + 1 < kNodes; ++n) topo.AddEdge(n, n + 1, kHop);
    const Partition part = PartitionTopology(topo);
    sim::Simulation root;
    FabricDomains fabric(root, part, workers);
    sim::DomainGroup* group = fabric.group();
    // Register every cut edge the way a wired testbed's links would.
    for (const net::CutEdgeInfo& cut : part.cut_edges()) {
      sim::CutEdge edge;
      edge.src = cut.src_domain;
      edge.dst = cut.dst_domain;
      edge.lookahead = cut.lookahead;
      edge.link = topo.edge(cut.edge).name;
      edge.src_node = topo.node(topo.edge(cut.edge).a).name;
      edge.dst_node = topo.node(topo.edge(cut.edge).b).name;
      group->NoteCrossLink(edge);
    }

    Outcome outcome;
    outcome.arrival.assign(kNodes, -1);
    std::function<void(int)> hop;
    hop = [&](int d) {
      outcome.arrival[static_cast<std::size_t>(d)] =
          fabric.domain_sim(d).Now();
      if (d + 1 < kNodes) {
        group->CrossPost(d, d + 1, fabric.domain_sim(d).Now() + kHop,
                         [&hop, d] { hop(d + 1); });
      }
    };
    fabric.domain_sim(0).ScheduleAt(50, [&] { hop(0); });
    fabric.Run();
    outcome.events = fabric.EventsProcessed();
    return outcome;
  };

  const Outcome one = run(1);
  EXPECT_EQ(one.arrival, (std::vector<Nanos>{50, 150, 250, 350}));
  for (int workers : {2, 4, 8}) {
    EXPECT_TRUE(run(workers) == one) << "workers=" << workers;
  }
}

// ----------------------------------------------------- testbeds as topologies

TEST(TestbedTopologyTest, SerialAndSplitReduceToExpectedPartitions) {
  workload::Testbed serial;
  EXPECT_EQ(serial.partition.domain_count(), 1);
  EXPECT_EQ(serial.group, nullptr);

  workload::Testbed split(/*compute_cores=*/16, BitRate::Gbps(100),
                          /*split_domains=*/true, /*split_workers=*/1);
  EXPECT_EQ(split.partition.domain_count(), 2);
  ASSERT_NE(split.group, nullptr);
  // The PR 5 layout through the general partitioner: the compute host alone
  // in domain 0, switch + memory/spot/bystander fused in domain 1.
  EXPECT_EQ(split.partition.domain_of(workload::Testbed::kComputeNode), 0);
  EXPECT_EQ(split.partition.domain_of(workload::Testbed::kSwitchNode), 1);
}

TEST(TestbedTopologyTest, FanInSplitsOneDomainPerNode) {
  workload::FanInConfig cfg;
  cfg.clients = 3;
  cfg.memory_servers = 2;
  cfg.split = true;
  cfg.split_workers = 1;
  workload::FanInTestbed bed(cfg);
  // 3 clients + switch + 2 memory servers + spot host = 7 nodes, 7 domains.
  EXPECT_EQ(bed.topo.node_count(), 7);
  EXPECT_EQ(bed.partition.domain_count(), 7);
  ASSERT_TRUE(bed.split());
  // Every client uplink is a cut edge: 6 directed cuts per... 6 edges × 2.
  EXPECT_EQ(bed.partition.cut_edges().size(), 12u);
  EXPECT_GT(bed.partition.lookahead(), 0);

  workload::FanInConfig serial_cfg;
  serial_cfg.clients = 3;
  serial_cfg.memory_servers = 2;
  workload::FanInTestbed serial_bed(serial_cfg);
  EXPECT_EQ(serial_bed.partition.domain_count(), 1);
  EXPECT_FALSE(serial_bed.split());
}

TEST(TestbedTopologyTest, TwoTierFanInAppendsGroupTorsAfterLegacyNodes) {
  workload::FanInConfig cfg;
  cfg.clients = 6;
  cfg.memory_servers = 2;
  cfg.client_groups = 2;
  cfg.split = true;
  cfg.split_workers = 1;
  workload::FanInTestbed bed(cfg);
  // 6 clients + core + 2 memories + spot + 2 group ToRs = 12 nodes; the
  // group ToRs append after the legacy ids so client/switch/memory/spot
  // node ids are unchanged from the flat fabric.
  EXPECT_EQ(bed.topo.node_count(), 12);
  EXPECT_EQ(bed.partition.domain_count(), 12);
  EXPECT_EQ(bed.switch_node(), 6);
  EXPECT_EQ(bed.spot_node(), 9);
  EXPECT_EQ(bed.group_tor_node(0), 10);
  EXPECT_EQ(bed.group_tor_node(1), 11);
  // Contiguous client blocks of ceil(6/2) = 3.
  EXPECT_EQ(bed.group_of_client(0), 0);
  EXPECT_EQ(bed.group_of_client(2), 0);
  EXPECT_EQ(bed.group_of_client(3), 1);
  EXPECT_EQ(bed.group_of_client(5), 1);
  EXPECT_EQ(bed.client_attach_node(0), bed.group_tor_node(0));
  EXPECT_EQ(bed.client_attach_node(5), bed.group_tor_node(1));
  // 6 client uplinks + 2 memory + 1 spot + 2 trunks = 11 edges, all cut
  // under the per-node split, emitted per direction.
  EXPECT_EQ(bed.partition.cut_edges().size(), 22u);
  ASSERT_EQ(bed.group_tors.size(), 2u);
  ASSERT_EQ(bed.trunks.size(), 2u);
  // Leaves default-route unknown destinations (memories, spot) up their
  // trunk; the core routes each client block down the matching trunk.
  EXPECT_EQ(bed.group_tors[0]->RouteFor(bed.memory_id(0)),
            bed.trunks[0].b_port);
  EXPECT_EQ(bed.sw.RouteFor(bed.client_id(0)), bed.trunks[0].a_port);
  EXPECT_EQ(bed.sw.RouteFor(bed.client_id(5)), bed.trunks[1].a_port);
}

// ---------------------------------------------------------------- PackDomains

TEST(PackDomainsTest, BalancesRatesUnderBudgetAndMatchesPartitioner) {
  // A fan-in star with one hot switch and two hot hosts. Under budget 3 the
  // 2x-fair-share cap (ceil(2*43/3) = 29) keeps the hot hosts out of the
  // switch's group: only the light hosts contract onto the switch.
  Topology topo;
  for (int h = 0; h < 5; ++h) {
    topo.AddNode(TopoNodeKind::kComputeHost, "h" + std::to_string(h));
  }
  const TopoNodeId sw = topo.AddNode(TopoNodeKind::kSwitch, "s");
  for (TopoNodeId h = 0; h < 5; ++h) topo.AddEdge(h, sw, 100);
  const std::vector<std::uint64_t> rates = {10, 10, 1, 1, 1, 20};
  EXPECT_EQ(net::PackDomains(topo, rates, 3), 3);
  EXPECT_EQ(topo.node(0).group, 0);
  EXPECT_EQ(topo.node(1).group, 1);
  for (TopoNodeId n : {TopoNodeId{2}, TopoNodeId{3}, TopoNodeId{4}, sw}) {
    EXPECT_EQ(topo.node(n).group, 2) << "node " << n;
  }
  // Group tags are numbered by first appearance in node order, so the
  // partitioner reproduces them verbatim as domain ids.
  const Partition part = PartitionTopology(topo);
  EXPECT_EQ(part.domain_count(), 3);
  for (TopoNodeId n = 0; n < topo.node_count(); ++n) {
    EXPECT_EQ(part.domain_of(n), topo.node(n).group) << "node " << n;
  }
}

TEST(PackDomainsTest, EqualRatesContractInEdgeIdOrderDeterministically) {
  auto build = [] {
    Topology topo;
    for (int n = 0; n < 4; ++n) {
      topo.AddNode(TopoNodeKind::kComputeHost, "n" + std::to_string(n));
    }
    topo.AddEdge(0, 1, 100);
    topo.AddEdge(1, 2, 100);
    topo.AddEdge(2, 3, 100);
    return topo;
  };
  const std::vector<std::uint64_t> rates = {1, 1, 1, 1};
  // All edge weights tie; the edge-id tie-break contracts the chain head
  // first, every time.
  Topology once = build();
  EXPECT_EQ(net::PackDomains(once, rates, 2), 2);
  Topology again = build();
  EXPECT_EQ(net::PackDomains(again, rates, 2), 2);
  for (TopoNodeId n = 0; n < once.node_count(); ++n) {
    EXPECT_EQ(once.node(n).group, again.node(n).group) << "node " << n;
  }
  EXPECT_EQ(once.node(0).group, 0);
  EXPECT_EQ(once.node(1).group, 0);
  EXPECT_EQ(once.node(2).group, 0);
  EXPECT_EQ(once.node(3).group, 1);
}

TEST(PackDomainsTest, RemainderFoldFusesLightestComponents) {
  // No edges at all: phase 1 has nothing to contract, so the remainder fold
  // must reach the budget by repeatedly fusing the two lightest components
  // (ties broken by lower minimum node id).
  Topology topo;
  for (int n = 0; n < 4; ++n) {
    topo.AddNode(TopoNodeKind::kComputeHost, "n" + std::to_string(n));
  }
  const std::vector<std::uint64_t> rates = {5, 3, 2, 2};
  EXPECT_EQ(net::PackDomains(topo, rates, 2), 2);
  EXPECT_EQ(topo.node(0).group, 0);  // the heavy node stays alone
  EXPECT_EQ(topo.node(1).group, 1);
  EXPECT_EQ(topo.node(2).group, 1);
  EXPECT_EQ(topo.node(3).group, 1);
}

TEST(PackDomainsTest, DegenerateBudgetsFallBackToSingletons) {
  auto build = [] {
    Topology topo;
    for (int n = 0; n < 3; ++n) {
      topo.AddNode(TopoNodeKind::kComputeHost, "n" + std::to_string(n));
    }
    topo.AddEdge(0, 1, 100);
    topo.AddEdge(1, 2, 100);
    return topo;
  };
  const std::vector<std::uint64_t> rates = {4, 4, 4};
  for (const int budget : {0, -1, 3, 10}) {
    Topology topo = build();
    EXPECT_EQ(net::PackDomains(topo, rates, budget), 3) << budget;
    for (TopoNodeId n = 0; n < topo.node_count(); ++n) {
      EXPECT_EQ(topo.node(n).group, n) << "budget " << budget;
    }
  }
}

}  // namespace
}  // namespace cowbird
