#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "workload/generator.h"
#include "workload/hash_workload.h"

namespace cowbird::workload {
namespace {

TEST(Zipfian, RankZeroIsHottest) {
  Rng rng(1);
  ZipfianGenerator gen(1000, 0.99);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[gen.Next(rng)]++;
  // Rank 0 must dominate and be well above uniform (100 per key).
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], 10000);
  // Long tail exists.
  EXPECT_GT(counts.size(), 400u);
}

TEST(Zipfian, ScrambledPreservesSkewButScatters) {
  Rng rng(2);
  ZipfianGenerator gen(100000, 0.99);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) counts[gen.NextScrambled(rng)]++;
  int max_count = 0;
  std::uint64_t hottest = 0;
  for (auto& [k, c] : counts) {
    if (c > max_count) {
      max_count = c;
      hottest = k;
    }
  }
  // Hot key exists but is not key 0 (scrambling scatters ranks).
  EXPECT_GT(max_count, 2000);
  EXPECT_NE(hottest, 0u);
}

TEST(Zipfian, StaysInRange) {
  Rng rng(3);
  ZipfianGenerator gen(50, 0.99);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(gen.Next(rng), 50u);
}

TEST(Uniform, CoversRange) {
  Rng rng(4);
  UniformGenerator gen(10);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) counts[gen.Next(rng)]++;
  EXPECT_EQ(counts.size(), 10u);
  for (auto& [k, c] : counts) {
    (void)k;
    EXPECT_NEAR(c, 1000, 250);
  }
}

// ---------------------------------------------------------------------------
// The microbenchmark driver: these are miniature versions of Figures 1/8 and
// assert the *ordering* the paper reports.
// ---------------------------------------------------------------------------

HashWorkloadConfig Quick(Paradigm p, int threads, Bytes record) {
  HashWorkloadConfig c;
  c.paradigm = p;
  c.threads = threads;
  c.record_size = record;
  c.records = 100'000;
  c.warmup = Micros(150);
  c.measure = Micros(600);
  return c;
}

TEST(HashWorkload, ParadigmOrderingMatchesPaper) {
  const double local = RunHashWorkload(Quick(Paradigm::kLocalMemory, 1, 256)).mops;
  const double cowbird = RunHashWorkload(Quick(Paradigm::kCowbird, 1, 256)).mops;
  const double nobatch =
      RunHashWorkload(Quick(Paradigm::kCowbirdNoBatch, 1, 256)).mops;
  const double async =
      RunHashWorkload(Quick(Paradigm::kOneSidedAsync, 1, 256)).mops;
  const double sync1 =
      RunHashWorkload(Quick(Paradigm::kOneSidedSync, 1, 256)).mops;
  const double sync2 =
      RunHashWorkload(Quick(Paradigm::kTwoSidedSync, 1, 256)).mops;

  // Figure 1 ordering: local ≥ cowbird > nobatch ≥ async >> sync one-sided
  // ≥ sync two-sided.
  EXPECT_GT(local, cowbird * 0.99);
  EXPECT_GT(cowbird, async);
  EXPECT_GT(nobatch, async * 0.8);
  // Paper Figure 1 gap is ~4.7x; our fabric calibration lands 3.5-4.5x
  // depending on record size (see EXPERIMENTS.md).
  EXPECT_GT(async, sync1 * 3.5);
  EXPECT_GT(sync1, sync2 * 0.9);
  // Cowbird close to local memory (paper: within 11.4%).
  EXPECT_GT(cowbird, local * 0.8);
  EXPECT_GT(sync1, 0.01);
}

TEST(HashWorkload, SyncLatencyBoundThroughput) {
  // One-sided sync: per-op time ≈ post + RTT + polls. At ~4 µs that is
  // ~0.25 MOPS per thread; assert the right ballpark (0.1–0.5).
  const auto r = RunHashWorkload(Quick(Paradigm::kOneSidedSync, 1, 64));
  EXPECT_GT(r.mops, 0.08);
  EXPECT_LT(r.mops, 0.6);
  // Sync RDMA spends almost all its time in communication (Figure 10).
  EXPECT_GT(r.comm_ratio, 0.7);
}

TEST(HashWorkload, CowbirdCommunicationRatioIsFarBelowRdma) {
  // On the raw microbenchmark (tiny per-op application work) Cowbird's
  // communication share is higher than the <20% the paper reports for
  // FASTER (Figure 10), but it must still be far below sync RDMA's 80%+.
  const auto cow = RunHashWorkload(Quick(Paradigm::kCowbird, 2, 64));
  const auto rdma = RunHashWorkload(Quick(Paradigm::kOneSidedSync, 2, 64));
  EXPECT_LT(cow.comm_ratio, 0.65);
  EXPECT_GT(rdma.comm_ratio, 0.75);
  EXPECT_LT(cow.comm_ratio, rdma.comm_ratio * 0.8);
  EXPECT_GT(cow.mops, 1.0);
}

TEST(HashWorkload, ThroughputScalesWithThreads) {
  const double one = RunHashWorkload(Quick(Paradigm::kCowbird, 1, 64)).mops;
  const double four = RunHashWorkload(Quick(Paradigm::kCowbird, 4, 64)).mops;
  EXPECT_GT(four, one * 2.0);
}

TEST(HashWorkload, LargeRecordsHitBandwidthCeiling) {
  // 512-byte records with many threads: the 100 Gbps link caps throughput
  // near 100e9/8/512 ≈ 24 MOPS; Cowbird should approach but not exceed it.
  auto c = Quick(Paradigm::kCowbird, 16, 512);
  c.measure = Millis(1);
  const auto r = RunHashWorkload(c);
  EXPECT_LT(r.mops, 26.0);
  EXPECT_GT(r.mops, 10.0);
}

TEST(HashWorkload, AifmIsFarBelowCowbird) {
  const double aifm = RunHashWorkload(Quick(Paradigm::kAifm, 4, 8)).mops;
  const double cowbird = RunHashWorkload(Quick(Paradigm::kCowbird, 4, 8)).mops;
  EXPECT_GT(cowbird, aifm * 5);  // order-of-magnitude class gap (Fig 12)
}

TEST(HashWorkload, SpotAgentFitsInOneCore) {
  auto c = Quick(Paradigm::kCowbird, 4, 64);
  const auto r = RunHashWorkload(c);
  // Processor-sharing accounting can slightly exceed 1.0 when coroutine
  // work items overlap on the single agent core.
  EXPECT_LE(r.offload_core_util, 1.3);
  EXPECT_GT(r.offload_core_util, 0.0);
}

TEST(LatencyProbe, SyncAndCowbirdUnbatchedAreClose) {
  LatencyProbeConfig sync;
  sync.paradigm = Paradigm::kOneSidedSync;
  sync.record_size = 256;
  sync.samples = 300;
  const auto rs = RunLatencyProbe(sync);

  LatencyProbeConfig nb;
  nb.paradigm = Paradigm::kCowbirdNoBatch;
  nb.record_size = 256;
  nb.samples = 300;
  const auto rn = RunLatencyProbe(nb);

  // Figure 13: Cowbird without batching is similar to sync one-sided RDMA
  // (2 extra RTTs + probe interval, minus post/poll savings).
  EXPECT_GT(rs.median_us, 1.0);
  EXPECT_LT(rn.median_us, rs.median_us * 4.0);
  EXPECT_GT(rn.median_us, rs.median_us * 0.8);
  EXPECT_GE(rn.p99_us, rn.median_us);
}

}  // namespace
}  // namespace cowbird::workload
